package obs

// CanonicalMetricNames is the complete inventory of metric series the
// instrumented layers register, one entry per name the source mentions.
// The audit test walks the repository's non-test sources and asserts set
// equality with this list, so a new metric (or a renamed one) fails the
// build until the inventory — and with it the documentation readers grep —
// is updated. Naming conventions, checked by TestCanonicalNameConventions:
//
//   - every name starts with "madgo_",
//   - counters end in "_total",
//   - duration histograms end in "_seconds",
//   - gauges carry a unit suffix when they hold one (e.g.
//     "_bytes_per_second" for rates), and none otherwise (levels such as
//     "madgo_active_flows", states, epochs and scores).
var CanonicalMetricNames = []string{
	// Link layer (internal/mad): per-send accounting, labelled {net, node}.
	"madgo_link_sends_total",
	"madgo_link_send_bytes_total",
	"madgo_link_send_seconds",

	// Fluid engine (internal/fluid): flow lifecycle, labelled {class}.
	"madgo_flows_started_total",
	"madgo_flows_completed_total",
	"madgo_flows_canceled_total",
	"madgo_flow_bytes_total",
	"madgo_flow_seconds",
	"madgo_active_flows",

	// Host CPU (internal/hw): staging copies.
	"madgo_memcpy_total",
	"madgo_memcpy_bytes_total",

	// Fault injector (internal/fault), labelled {kind, net}.
	"madgo_faults_total",

	// Gateway pipelines (internal/fwd/gateway.go), labelled {gateway}.
	"madgo_gateway_relayed_packets_total",
	"madgo_gateway_relayed_bytes_total",
	"madgo_gateway_swap_seconds",
	"madgo_gateway_stall_seconds",

	// Reliable delivery (internal/fwd/reliable.go), labelled {node}.
	"madgo_retransmits_total",
	"madgo_failovers_total",
	"madgo_message_resends_total",
	"madgo_duplicates_total",
	"madgo_checksum_drops_total",
	"madgo_relay_drops_total",
	"madgo_rel_rx_evictions_total",
	"madgo_rel_ack_packets_total",
	"madgo_rel_acks_coalesced_total",

	// Credit-based gateway flow control (internal/fwd/flowctl.go,
	// gateway.go, reliable.go). Credit counters labelled {node, gateway}
	// (spent) or {gateway} (granted); stalls labelled {node}; scheduler
	// rounds labelled {gateway}; backpressure labelled {node}.
	"madgo_flow_credits_granted_total",
	"madgo_flow_credits_spent_total",
	"madgo_flow_credit_stalls_total",
	"madgo_flow_credit_stall_seconds",
	"madgo_flow_sched_rounds_total",
	"madgo_flow_backpressure_total",

	// Eager small-message aggregation (internal/fwd/agg.go). Frames
	// labelled {node, reason: size|idle|ordering}; the wait histogram is the
	// per-sub-message time between coalescer enqueue and flush.
	"madgo_agg_submessages_total",
	"madgo_agg_frames_total",
	"madgo_agg_frame_bytes_total",
	"madgo_agg_bypass_total",
	"madgo_agg_queue_wait_seconds",

	// Per-message delivery latency observed by traffic drivers
	// (cmd/madload -small), labelled {sink}.
	"madgo_message_latency_seconds",

	// Multi-rail striping (internal/fwd/stripe.go).
	"madgo_stripe_messages_total",
	"madgo_stripe_rebalance_total",
	"madgo_stripe_rail_failovers_total",
	"madgo_stripe_rail_bytes_total",
	"madgo_stripe_rail_rate_bytes_per_second",

	// Gateway-native multicast (internal/fwd/mcast.go). Messages, branches
	// and local deliveries labelled {node}; relays and replication counters
	// labelled {gateway}. Replicated packets/bytes count *egress* transfers;
	// the ingress side stays on the gateway_relayed counters, which is what
	// keeps ingress load independent of the receiver count.
	"madgo_mcast_messages_total",
	"madgo_mcast_relays_total",
	"madgo_mcast_branches_total",
	"madgo_mcast_replicated_packets_total",
	"madgo_mcast_replicated_bytes_total",
	"madgo_mcast_local_deliveries_total",

	// Link-health detector (internal/health, internal/fwd/health.go).
	"madgo_health_probes_total",
	"madgo_health_probe_failures_total",
	"madgo_health_readmissions_total",
	"madgo_health_transitions_total",
	"madgo_health_link_score",
	"madgo_health_link_state",
	"madgo_health_dead_links",
	"madgo_route_epoch",
}
