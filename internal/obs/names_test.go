package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestCanonicalNameConventions pins the naming rules the inventory
// documents: the madgo_ prefix, _total counters, _seconds histograms, and
// unit suffixes on rate gauges.
func TestCanonicalNameConventions(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range CanonicalMetricNames {
		if seen[n] {
			t.Errorf("duplicate canonical name %q", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "madgo_") {
			t.Errorf("%q does not start with madgo_", n)
		}
		if strings.Contains(n, "rate") && !strings.HasSuffix(n, "_per_second") {
			t.Errorf("rate gauge %q lacks the _per_second unit suffix", n)
		}
		if strings.HasSuffix(n, "_total") && strings.Contains(n, "_seconds") {
			t.Errorf("%q mixes the counter and histogram suffixes", n)
		}
	}
}

// metricLiteral matches a quoted madgo_* metric name in Go source.
var metricLiteral = regexp.MustCompile(`"(madgo_[a-z0-9_]+)"`)

// TestCanonicalNamesMatchSources is the drift audit: every madgo_* literal
// in the repository's non-test sources must be in CanonicalMetricNames, and
// every canonical name must still be mentioned somewhere — so both adding
// an undocumented metric and renaming one without updating the inventory
// fail here.
func TestCanonicalNamesMatchSources(t *testing.T) {
	root := "../.." // the obs package sits at <module>/internal/obs
	canonical := make(map[string]bool, len(CanonicalMetricNames))
	for _, n := range CanonicalMetricNames {
		canonical[n] = false // value flips to true when a source mentions it
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "examples" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricLiteral.FindAllStringSubmatch(string(src), -1) {
			name := m[1]
			if _, ok := canonical[name]; !ok {
				t.Errorf("%s mentions %q, which is not in obs.CanonicalMetricNames", path, name)
				continue
			}
			canonical[name] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, used := range canonical {
		if !used {
			t.Errorf("canonical name %q is mentioned by no source file — stale inventory entry?", name)
		}
	}
}
