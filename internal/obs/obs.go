// Package obs is the observability layer of the reproduction: a
// virtual-time-aware metrics registry (counters, gauges and log-bucketed
// latency histograms with quantile queries, keyed by free-form labels) plus
// causal per-message tracing — every message packed on a virtual channel
// gets an ID, and every layer it crosses appends hop events, so a single
// message's full provenance (fragmentation, gateway relays, retransmits,
// failovers, end-to-end acks) can be reconstructed after the run.
//
// The registry is the quantitative counterpart of package trace's span
// recorder: spans answer "what was this lane doing at t", the registry
// answers "how many, how big, how long" over the whole run, and the hop log
// answers "where did message 17 go". Exporters turn all three into
// machine-readable artifacts: a Prometheus-style text snapshot
// (WritePrometheus) and a Chrome trace_event JSON loadable in Perfetto
// (WriteChromeTrace).
//
// A nil *Registry is valid and records nothing, so instrumented code needs
// no conditionals — the same convention as trace.Tracer. All methods are
// safe for concurrent use; the simulation itself is single-threaded, but
// tests and tools may read while goroutines record.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"madgo/internal/vtime"
)

// Labels is one metric's label set. Callers pass literals; the registry
// canonicalizes (sorted keys) so the same set always names the same series.
type Labels map[string]string

// Hop is one event in a message's life: packed, sent over a hop, relayed,
// retransmitted, failed over, delivered, acknowledged end to end.
type Hop struct {
	Msg    uint64     // message ID assigned at pack time
	At     vtime.Time // virtual time of the event
	Node   string     // where it happened
	Op     string     // "pack", "hop", "relay", "rexmit", "failover", "deliver", "e2e", ...
	Detail string     // human-readable specifics ("frag 3 -> gw via sci0")
	Bytes  int        // payload bytes involved (0 for control events)
}

func (h Hop) String() string {
	return fmt.Sprintf("%12v  %-8s %-10s %6dB  %s", h.At, h.Node, h.Op, h.Bytes, h.Detail)
}

// Registry collects labeled counters, gauges and histograms plus the
// per-message hop log. The zero value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	clock    func() vtime.Time
	counters map[string]*series
	gauges   map[string]*series
	hists    map[string]*Histogram
	hops     []Hop
	byMsg    map[uint64][]int
}

// series is one labeled counter or gauge.
type series struct {
	name   string
	labels Labels
	val    float64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*series),
		gauges:   make(map[string]*series),
		hists:    make(map[string]*Histogram),
		byMsg:    make(map[uint64][]int),
	}
}

// SetClock installs the virtual-time source used to stamp snapshots
// (typically vtime.Sim.Now). A registry without a clock stamps time zero.
func (r *Registry) SetClock(fn func() vtime.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = fn
	r.mu.Unlock()
}

// Now returns the registry's current virtual time.
func (r *Registry) Now() vtime.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	fn := r.clock
	r.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// key builds the canonical series identity: name{k1="v1",k2="v2"} with keys
// sorted.
func key(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// copyLabels snapshots a label map so later caller mutation cannot corrupt
// the series identity.
func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Add increments the named counter series by delta (creating it at zero
// first). A delta of zero registers the series so it appears in snapshots
// before the first event.
func (r *Registry) Add(name string, labels Labels, delta float64) {
	if r == nil {
		return
	}
	if delta < 0 {
		panic("obs: counter " + name + " decremented")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	s := r.counters[k]
	if s == nil {
		s = &series{name: name, labels: copyLabels(labels)}
		r.counters[k] = s
	}
	s.val += delta
}

// Set sets the named gauge series to v.
func (r *Registry) Set(name string, labels Labels, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	s := r.gauges[k]
	if s == nil {
		s = &series{name: name, labels: copyLabels(labels)}
		r.gauges[k] = s
	}
	s.val = v
}

// Observe records v into the named histogram series.
func (r *Registry) Observe(name string, labels Labels, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	h := r.hists[k]
	if h == nil {
		h = newHistogram(name, copyLabels(labels))
		r.hists[k] = h
	}
	h.observe(v)
}

// ObserveDuration records a virtual duration, in seconds, into the named
// histogram series.
func (r *Registry) ObserveDuration(name string, labels Labels, d vtime.Duration) {
	r.Observe(name, labels, d.Seconds())
}

// Counter returns the current value of a counter series (0 when absent).
func (r *Registry) Counter(name string, labels Labels) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.counters[key(name, labels)]; s != nil {
		return s.val
	}
	return 0
}

// Gauge returns the current value of a gauge series (0 when absent).
func (r *Registry) Gauge(name string, labels Labels) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.gauges[key(name, labels)]; s != nil {
		return s.val
	}
	return 0
}

// Quantile returns the q-quantile estimate of a histogram series, with
// ok=false when the series is absent or empty.
func (r *Registry) Quantile(name string, labels Labels, q float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key(name, labels)]
	if h == nil || h.count == 0 {
		return 0, false
	}
	return h.quantile(q), true
}

// HistogramCount returns the observation count of a histogram series.
func (r *Registry) HistogramCount(name string, labels Labels) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[key(name, labels)]; h != nil {
		return h.count
	}
	return 0
}

// RecordHop appends one event to a message's provenance log.
func (r *Registry) RecordHop(msg uint64, at vtime.Time, node, op, detail string, bytes int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byMsg[msg] = append(r.byMsg[msg], len(r.hops))
	r.hops = append(r.hops, Hop{Msg: msg, At: at, Node: node, Op: op, Detail: detail, Bytes: bytes})
}

// MessageTrace returns the full hop sequence of one message, ordered by
// virtual time (ties keep recording order). Nil when the message is unknown.
func (r *Registry) MessageTrace(msg uint64) []Hop {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.byMsg[msg]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Hop, len(idx))
	for i, j := range idx {
		out[i] = r.hops[j]
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Messages returns the IDs of every traced message, ascending.
func (r *Registry) Messages() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.byMsg))
	for id := range r.byMsg {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Hops returns every recorded hop event in recording order.
func (r *Registry) Hops() []Hop {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Hop(nil), r.hops...)
}
