package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"madgo/internal/trace"
	"madgo/internal/vtime"
)

func TestCountersGaugesAndKeys(t *testing.T) {
	r := New()
	r.Add("pkts", Labels{"net": "sci0", "node": "a1"}, 1)
	r.Add("pkts", Labels{"node": "a1", "net": "sci0"}, 2) // same set, other order
	if got := r.Counter("pkts", Labels{"net": "sci0", "node": "a1"}); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if got := r.Counter("pkts", Labels{"net": "myri0", "node": "a1"}); got != 0 {
		t.Fatalf("absent counter = %v, want 0", got)
	}
	r.Set("depth", nil, 4)
	r.Set("depth", nil, 2)
	if got := r.Gauge("depth", nil); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	// A zero delta registers the series without changing it.
	r.Add("rexmits", Labels{"node": "gw"}, 0)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `rexmits{node="gw"} 0`) {
		t.Fatalf("zero-registered counter missing from snapshot:\n%s", sb.String())
	}
}

func TestCounterDecrementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	New().Add("pkts", nil, -1)
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("x", nil, 1)
	r.Set("x", nil, 1)
	r.Observe("x", nil, 1)
	r.ObserveDuration("x", nil, vtime.Millisecond)
	r.SetClock(nil)
	r.RecordHop(1, 0, "a", "pack", "", 0)
	if r.Counter("x", nil) != 0 || r.Gauge("x", nil) != 0 || r.HistogramCount("x", nil) != 0 {
		t.Fatal("nil registry returned nonzero")
	}
	if _, ok := r.Quantile("x", nil, 0.5); ok {
		t.Fatal("nil registry quantile ok")
	}
	if r.MessageTrace(1) != nil || r.Messages() != nil || r.Hops() != nil {
		t.Fatal("nil registry returned hops")
	}
	if r.Now() != 0 {
		t.Fatal("nil registry Now != 0")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "no metrics registry") {
		t.Fatalf("nil snapshot: %q", sb.String())
	}
}

func TestHistogramQuantileConstantSeriesIsExact(t *testing.T) {
	// The §3.4.1 reproduction depends on this: every buffer switch costs
	// exactly SwapOverhead, so the quantiles must report it exactly, not the
	// containing bucket's bound.
	r := New()
	for i := 0; i < 100; i++ {
		r.ObserveDuration("swap", nil, 40*vtime.Microsecond)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, ok := r.Quantile("swap", nil, q)
		if !ok || math.Abs(got-40e-6) > 1e-12 {
			t.Fatalf("q%v = %v ok=%v, want exactly 40e-6", q, got, ok)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := newHistogram("lat", nil)
	for i := 1; i <= 1000; i++ {
		h.observe(float64(i) * 1e-6) // 1µs .. 1ms uniform
	}
	p50, p99 := h.quantile(0.5), h.quantile(0.99)
	if !(p50 < p99) {
		t.Fatalf("p50=%v >= p99=%v", p50, p99)
	}
	// Log buckets with 8 sub-octaves bound relative error by 2^(1/8)-1 ≈ 9%.
	if math.Abs(p50-500e-6)/500e-6 > 0.1 {
		t.Fatalf("p50 = %v, want ~500µs within 10%%", p50)
	}
	if math.Abs(p99-990e-6)/990e-6 > 0.1 {
		t.Fatalf("p99 = %v, want ~990µs within 10%%", p99)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1e-6 || h.Max() != 1e-3 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500.5e-6) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramNegativeObservationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative observation did not panic")
		}
	}()
	New().Observe("lat", nil, -1)
}

func TestBucketBoundsContainValues(t *testing.T) {
	for _, v := range []float64{1e-10, 1e-9, 3e-9, 41e-6, 1.0, 123.456} {
		i := bucketIndex(v)
		if bucketUpper(i) < v*(1-1e-12) {
			t.Fatalf("v=%v above bucket %d upper %v", v, i, bucketUpper(i))
		}
		if i > 0 && bucketUpper(i-1) >= v*(1+1e-12) {
			t.Fatalf("v=%v at or below bucket %d lower %v", v, i, bucketUpper(i-1))
		}
	}
}

func TestMessageTraceOrdering(t *testing.T) {
	r := New()
	r.RecordHop(7, 300, "gw", "relay", "sci0 -> myri0", 1024)
	r.RecordHop(7, 100, "a1", "pack", "", 2048)
	r.RecordHop(7, 200, "a1", "hop", "a1 -> gw via sci0", 1024)
	r.RecordHop(9, 150, "b1", "pack", "", 64)
	hops := r.MessageTrace(7)
	if len(hops) != 3 {
		t.Fatalf("len = %d, want 3", len(hops))
	}
	ops := []string{hops[0].Op, hops[1].Op, hops[2].Op}
	if ops[0] != "pack" || ops[1] != "hop" || ops[2] != "relay" {
		t.Fatalf("order = %v", ops)
	}
	if r.MessageTrace(8) != nil {
		t.Fatal("unknown message returned hops")
	}
	if ids := r.Messages(); len(ids) != 2 || ids[0] != 7 || ids[1] != 9 {
		t.Fatalf("messages = %v", ids)
	}
	if len(r.Hops()) != 4 {
		t.Fatalf("hops = %d", len(r.Hops()))
	}
	if s := hops[0].String(); !strings.Contains(s, "pack") || !strings.Contains(s, "a1") {
		t.Fatalf("hop string: %q", s)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.SetClock(func() vtime.Time { return vtime.Time(5 * vtime.Millisecond) })
	r.Add("madgo_retransmits_total", Labels{"node": "a1"}, 3)
	r.Set("madgo_active_flows", Labels{"net": "sci0"}, 2)
	r.ObserveDuration("madgo_send_seconds", Labels{"net": "sci0"}, 40*vtime.Microsecond)
	r.ObserveDuration("madgo_send_seconds", Labels{"net": "sci0"}, 80*vtime.Microsecond)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# madgo metrics snapshot at virtual time 5ms",
		"# TYPE madgo_retransmits_total counter",
		`madgo_retransmits_total{node="a1"} 3`,
		"# TYPE madgo_active_flows gauge",
		`madgo_active_flows{net="sci0"} 2`,
		"# TYPE madgo_send_seconds histogram",
		`madgo_send_seconds_bucket{le="+Inf",net="sci0"} 2`,
		`madgo_send_seconds_count{net="sci0"} 2`,
		`madgo_send_seconds{net="sci0",quantile="0.5"}`,
		`madgo_send_seconds{net="sci0",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count and no
	// earlier bucket exceeds it.
	if strings.Count(out, "madgo_send_seconds_bucket") < 3 {
		t.Fatalf("expected at least 3 bucket lines:\n%s", out)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	tr := trace.New()
	tr.Record("gw:recv:sci0", "recv", 1024, 0, vtime.Time(10*vtime.Microsecond))
	tr.Record("gw:send:myri0", "send", 1024, vtime.Time(10*vtime.Microsecond), vtime.Time(25*vtime.Microsecond))
	r := New()
	r.RecordHop(1, vtime.Time(5*vtime.Microsecond), "a1", "pack", "", 1024)
	r.RecordHop(1, vtime.Time(30*vtime.Microsecond), "b1", "deliver", "", 1024)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans(), r.Hops()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Pid <= 0 || e.Tid <= 0 {
				t.Fatalf("span event without pid/tid: %+v", e)
			}
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 2 || instant != 2 {
		t.Fatalf("complete=%d instant=%d, want 2/2", complete, instant)
	}
	if meta < 4 { // 2+ processes, 2+ threads
		t.Fatalf("metadata events = %d, want >= 4", meta)
	}
	// recv span starts at t=0 and lasts 10µs.
	for _, e := range doc.TraceEvents {
		if e.Name == "recv" && e.Ph == "X" {
			if e.Ts != 0 || e.Dur != 10 {
				t.Fatalf("recv ts=%v dur=%v, want 0/10", e.Ts, e.Dur)
			}
		}
	}
}

func TestAnalyzeLanes(t *testing.T) {
	us := func(n int64) vtime.Time { return vtime.Time(n) * vtime.Time(vtime.Microsecond) }
	tr := trace.New()
	// Lane with periodic recvs (period 100µs), one swap, and idle tail.
	for i := int64(0); i < 5; i++ {
		tr.Record("gw:recv:sci0", "recv", 1024, us(i*100), us(i*100+40))
	}
	tr.Record("gw:recv:sci0", "swap", 0, us(440), us(480))
	// Overlapping spans must not double-count.
	tr.Record("gw:send:myri0", "send", 512, us(0), us(50))
	tr.Record("gw:send:myri0", "send", 512, us(25), us(75))

	lanes := AnalyzeLanes(tr, 0, us(1000))
	if len(lanes) != 2 {
		t.Fatalf("lanes = %d, want 2", len(lanes))
	}
	recv := lanes[0]
	if recv.Actor != "gw:recv:sci0" {
		t.Fatalf("lane order: %v", recv.Actor)
	}
	if recv.Busy != 200*vtime.Microsecond {
		t.Fatalf("busy = %v, want 200µs", recv.Busy)
	}
	if recv.Stall != 40*vtime.Microsecond {
		t.Fatalf("stall = %v, want 40µs", recv.Stall)
	}
	if recv.Idle != 760*vtime.Microsecond {
		t.Fatalf("idle = %v, want 760µs", recv.Idle)
	}
	if math.Abs(recv.Utilization-0.2) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.2", recv.Utilization)
	}
	if recv.SteadyPeriod != 100*vtime.Microsecond {
		t.Fatalf("steady period = %v, want 100µs", recv.SteadyPeriod)
	}
	send := lanes[1]
	if send.Busy != 75*vtime.Microsecond {
		t.Fatalf("overlap busy = %v, want 75µs", send.Busy)
	}

	// Window clipping: only the first recv is inside [0, 50µs).
	clipped := AnalyzeLanes(tr, 0, us(50))
	if clipped[0].Busy != 40*vtime.Microsecond {
		t.Fatalf("clipped busy = %v, want 40µs", clipped[0].Busy)
	}

	if AnalyzeLanes(tr, us(10), us(10)) != nil {
		t.Fatal("empty window returned lanes")
	}
	if AnalyzeLanes(nil, 0, us(10)) != nil {
		t.Fatal("nil tracer returned lanes")
	}

	var sb strings.Builder
	WriteLaneReport(&sb, lanes)
	if !strings.Contains(sb.String(), "gw:recv:sci0") || !strings.Contains(sb.String(), "util") {
		t.Fatalf("lane report:\n%s", sb.String())
	}
	sb.Reset()
	WriteLaneReport(&sb, nil)
	if !strings.Contains(sb.String(), "no lanes") {
		t.Fatalf("empty report: %q", sb.String())
	}
}
