package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry as a Prometheus-style text snapshot:
// counters and gauges as plain series, histograms as cumulative `_bucket`
// series plus `_sum`/`_count` and precomputed quantile series (p50/p90/p99),
// everything sorted so snapshots diff cleanly. The header comment carries
// the virtual timestamp of the snapshot.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "# no metrics registry armed")
		return
	}
	fmt.Fprintf(w, "# madgo metrics snapshot at virtual time %v\n", r.Now())

	r.mu.Lock()
	defer r.mu.Unlock()

	families := make(map[string][]string) // family name -> rendered lines
	types := make(map[string]string)

	for k, s := range r.counters {
		families[s.name] = append(families[s.name], fmt.Sprintf("%s %s", k, formatVal(s.val)))
		types[s.name] = "counter"
	}
	for k, s := range r.gauges {
		families[s.name] = append(families[s.name], fmt.Sprintf("%s %s", k, formatVal(s.val)))
		types[s.name] = "gauge"
	}
	for _, h := range r.hists {
		families[h.name] = append(families[h.name], renderHistogram(h)...)
		types[h.name] = "histogram"
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# TYPE %s %s\n", n, types[n])
		lines := families[n]
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
}

// renderHistogram emits the cumulative bucket, sum, count and quantile lines
// of one histogram series.
func renderHistogram(h *Histogram) []string {
	var out []string
	var cum int64
	for _, i := range h.sortedIndexes() {
		cum += h.buckets[i]
		out = append(out, fmt.Sprintf("%s %d",
			key(h.name+"_bucket", withLabel(h.labels, "le", formatVal(bucketUpper(i)))), cum))
	}
	out = append(out, fmt.Sprintf("%s %d",
		key(h.name+"_bucket", withLabel(h.labels, "le", "+Inf")), h.count))
	out = append(out, fmt.Sprintf("%s %s", key(h.name+"_sum", h.labels), formatVal(h.sum)))
	out = append(out, fmt.Sprintf("%s %d", key(h.name+"_count", h.labels), h.count))
	for _, q := range [...]float64{0.5, 0.9, 0.99} {
		out = append(out, fmt.Sprintf("%s %s",
			key(h.name, withLabel(h.labels, "quantile", fmt.Sprintf("%g", q))), formatVal(h.quantile(q))))
	}
	return out
}

// withLabel returns labels plus one extra pair (the original is not
// mutated).
func withLabel(l Labels, k, v string) Labels {
	out := make(Labels, len(l)+1)
	for kk, vv := range l {
		out[kk] = vv
	}
	out[k] = v
	return out
}

// formatVal renders a sample value the way Prometheus text format expects:
// integers without a decimal point, everything else in compact scientific
// form.
func formatVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%g", v)
	return strings.TrimSpace(s)
}
