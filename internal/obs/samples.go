package obs

import "sort"

// Sample is one series of a structured registry snapshot: the JSON-friendly
// counterpart of one WritePrometheus line, used by madstat -json to emit
// metrics, health and diagnosis as a single machine-readable document.
type Sample struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"` // "counter", "gauge" or "histogram"
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"` // counter/gauge value; histogram sum

	// Histogram-only fields.
	Count int64   `json:"count,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Samples returns every registered series as a sorted, self-describing
// slice: counters first, then gauges, then histograms, each group ordered
// by canonical series identity. Nil-safe.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	kindRank := map[string]int{"counter": 0, "gauge": 1, "histogram": 2}
	for _, s := range r.counters {
		out = append(out, Sample{Name: s.name, Kind: "counter", Labels: copyLabels(s.labels), Value: s.val})
	}
	for _, s := range r.gauges {
		out = append(out, Sample{Name: s.name, Kind: "gauge", Labels: copyLabels(s.labels), Value: s.val})
	}
	for _, h := range r.hists {
		sm := Sample{Name: h.name, Kind: "histogram", Labels: copyLabels(h.labels), Value: h.sum, Count: h.count}
		if h.count > 0 {
			sm.P50, sm.P90, sm.P99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
		}
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return kindRank[out[i].Kind] < kindRank[out[j].Kind]
		}
		return key(out[i].Name, out[i].Labels) < key(out[j].Name, out[j].Labels)
	})
	return out
}
