package route

import (
	"sort"

	"madgo/internal/topo"
)

// ComputeK finds up to k link-disjoint routes from src to dst, for the
// striping layer that transmits one message over several rails in parallel.
//
// Routes are extracted greedily: each round runs a widest-shortest-path
// search (maximise the bottleneck network rate, then minimise hops, ties
// broken by network declaration order and node name so the result is
// deterministic) over the graph with every directed link of the previously
// chosen routes removed. Gateway disjointness is preferred — the first
// search of a round also avoids the intermediate nodes of earlier routes,
// and only when that yields nothing is the search repeated with shared
// gateways allowed. Link disjointness is required: once no link-disjoint
// route remains the result is final, even if shorter than k.
//
// rate maps a network name to its bottleneck bandwidth (any consistent
// unit); nil means all networks rate equally, reducing the ranking to
// fewest-hops with declaration-order ties — the same preference Compute
// uses.
//
// ComputeK panics on unknown nodes; src == dst returns nil.
func ComputeK(t *topo.Topology, src, dst string, k int, rate func(network string) float64) []Route {
	return ComputeKAvoiding(t, src, dst, k, rate, nil)
}

// ComputeKAvoiding is ComputeK over the graph with the given directed links
// removed before the first extraction round. The health monitor feeds it the
// currently-dead edge set so stripe schedulers rebuild their rail sets
// against live connectivity only — and, symmetrically, so a readmitted link
// (absent from avoid on the next epoch) restores the rail set to its
// configured width.
func ComputeKAvoiding(t *topo.Topology, src, dst string, k int, rate func(network string) float64, avoid map[Edge]bool) []Route {
	if src == dst {
		return nil
	}
	if _, ok := t.Node(src); !ok {
		panic("route: unknown source " + src)
	}
	if _, ok := t.Node(dst); !ok {
		panic("route: unknown destination " + dst)
	}
	if rate == nil {
		rate = func(string) float64 { return 1 }
	}
	netIdx := make(map[string]int)
	for i, n := range t.Networks() {
		netIdx[n.Name] = i
	}
	usedLink := make(map[linkKey]bool)
	for e := range avoid {
		usedLink[linkKey{net: e.Network, from: e.From, to: e.To}] = true
	}
	usedGate := make(map[string]bool)
	var routes []Route
	for len(routes) < k {
		r := widestRoute(t, src, dst, rate, netIdx, usedLink, usedGate)
		if r == nil {
			// No gateway-disjoint route left; settle for link-disjoint.
			r = widestRoute(t, src, dst, rate, netIdx, usedLink, nil)
		}
		if r == nil {
			break
		}
		prev := src
		for _, h := range r {
			usedLink[linkKey{net: h.Network, from: prev, to: h.To}] = true
			if h.To != dst {
				usedGate[h.To] = true
			}
			prev = h.To
		}
		routes = append(routes, r)
	}
	return routes
}

// linkKey identifies one directed (network, from, to) link.
type linkKey struct {
	net, from, to string
}

// widestRoute runs one widest-shortest-path search from src to dst, skipping
// the given directed links and (when avoidGate is non-nil) the given
// intermediate nodes. It returns nil when dst is unreachable under those
// constraints.
func widestRoute(t *topo.Topology, src, dst string, rate func(string) float64,
	netIdx map[string]int, skipLink map[linkKey]bool, avoidGate map[string]bool) Route {

	type label struct {
		width float64
		hops  int
		prev  string
		via   string
		done  bool
		seen  bool
	}
	lab := map[string]*label{src: {width: maxFloat, seen: true}}

	// better reports whether (w1,h1) beats (w2,h2) lexicographically:
	// wider bottleneck first, then fewer hops.
	better := func(w1 float64, h1 int, w2 float64, h2 int) bool {
		if w1 != w2 {
			return w1 > w2
		}
		return h1 < h2
	}

	for {
		// Extract the best unfinished label; ties by node name keep the
		// search deterministic.
		var cur string
		var cl *label
		for _, name := range t.NodeNames() {
			l := lab[name]
			if l == nil || l.done || !l.seen {
				continue
			}
			if cl == nil || better(l.width, l.hops, cl.width, cl.hops) {
				cur, cl = name, l
			}
		}
		if cl == nil {
			return nil
		}
		if cur == dst {
			break
		}
		cl.done = true
		if avoidGate != nil && cur != src && avoidGate[cur] {
			continue
		}
		node, _ := t.Node(cur)
		// Stable relaxation order: declared-earlier networks first, then
		// peer name, so equal-width ties resolve the same way Compute's
		// BFS does.
		var hops []neighbor
		for _, nw := range node.Networks {
			net, _ := t.Network(nw)
			for _, peer := range net.Members {
				if peer != cur {
					hops = append(hops, neighbor{network: nw, node: peer})
				}
			}
		}
		sort.Slice(hops, func(i, j int) bool {
			if a, b := netIdx[hops[i].network], netIdx[hops[j].network]; a != b {
				return a < b
			}
			return hops[i].node < hops[j].node
		})
		for _, h := range hops {
			if skipLink[linkKey{net: h.network, from: cur, to: h.node}] {
				continue
			}
			if avoidGate != nil && h.node != dst && avoidGate[h.node] {
				continue
			}
			w := rate(h.network)
			if cl.width < w {
				w = cl.width
			}
			nl := lab[h.node]
			if nl == nil {
				nl = &label{}
				lab[h.node] = nl
			}
			if nl.done {
				continue
			}
			if !nl.seen || better(w, cl.hops+1, nl.width, nl.hops) {
				nl.seen = true
				nl.width = w
				nl.hops = cl.hops + 1
				nl.prev = cur
				nl.via = h.network
			}
		}
	}

	var rev Route
	for cur := dst; cur != src; {
		l := lab[cur]
		rev = append(rev, Hop{Network: l.via, To: cur})
		cur = l.prev
	}
	r := make(Route, len(rev))
	for i := range rev {
		r[i] = rev[len(rev)-1-i]
	}
	return r
}

const maxFloat = 1.7976931348623157e308
