package route

import (
	"reflect"
	"testing"

	"madgo/internal/topo"
)

func mustTopo(t *testing.T, b *topo.Builder) *topo.Topology {
	t.Helper()
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// Two parallel direct networks: ComputeK must return both rails, fastest
// first, and stop at two no matter how large k is.
func TestComputeKDualDirectRails(t *testing.T) {
	tp := mustTopo(t, topo.NewBuilder().
		Network("myri0", "myrinet").
		Network("sci0", "sci").
		Node("a", "myri0", "sci0").
		Node("b", "myri0", "sci0"))
	rate := func(nw string) float64 {
		if nw == "myri0" {
			return 47
		}
		return 44
	}
	rs := ComputeK(tp, "a", "b", 3, rate)
	want := []Route{
		{{Network: "myri0", To: "b"}},
		{{Network: "sci0", To: "b"}},
	}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("got %v, want %v", rs, want)
	}
	// With the rates swapped the slower-declared network must come first.
	rs = ComputeK(tp, "a", "b", 2, func(nw string) float64 {
		if nw == "sci0" {
			return 90
		}
		return 47
	})
	if rs[0][0].Network != "sci0" || rs[1][0].Network != "myri0" {
		t.Fatalf("rate ranking ignored: %v", rs)
	}
}

// A diamond with two gateways: the two routes must use different gateways.
func TestComputeKGatewayDisjoint(t *testing.T) {
	tp := mustTopo(t, topo.NewBuilder().
		Network("n1", "myrinet").
		Network("n2", "myrinet").
		Network("n3", "sci").
		Network("n4", "sci").
		Node("a", "n1", "n3").
		Node("g1", "n1", "n2").
		Node("g2", "n3", "n4").
		Node("b", "n2", "n4"))
	rs := ComputeK(tp, "a", "b", 2, nil)
	if len(rs) != 2 {
		t.Fatalf("want 2 routes, got %v", rs)
	}
	g1 := rs[0].Gateways()
	g2 := rs[1].Gateways()
	if len(g1) != 1 || len(g2) != 1 || g1[0] == g2[0] {
		t.Fatalf("routes share a gateway: %v / %v", rs[0], rs[1])
	}
}

// One shared gateway with disjoint links on both sides: gateway disjointness
// is preferred but not required — the second route reuses the gateway over
// the unused links.
func TestComputeKLinkDisjointFallback(t *testing.T) {
	tp := mustTopo(t, topo.NewBuilder().
		Network("n1", "myrinet").
		Network("n2", "myrinet").
		Network("n3", "sci").
		Network("n4", "sci").
		Node("a", "n1", "n3").
		Node("g", "n1", "n2", "n3", "n4").
		Node("b", "n2", "n4"))
	rs := ComputeK(tp, "a", "b", 3, nil)
	if len(rs) != 2 {
		t.Fatalf("want 2 link-disjoint routes, got %v", rs)
	}
	want := []Route{
		{{Network: "n1", To: "g"}, {Network: "n2", To: "b"}},
		{{Network: "n3", To: "g"}, {Network: "n4", To: "b"}},
	}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("got %v, want %v", rs, want)
	}
}

// A single path yields exactly one route, and k<=0 none.
func TestComputeKSinglePath(t *testing.T) {
	tp := mustTopo(t, topo.NewBuilder().
		Network("n1", "myrinet").
		Network("n2", "sci").
		Node("a", "n1").
		Node("g", "n1", "n2").
		Node("b", "n2"))
	rs := ComputeK(tp, "a", "b", 4, nil)
	if len(rs) != 1 {
		t.Fatalf("want 1 route, got %v", rs)
	}
	if got := ComputeK(tp, "a", "b", 0, nil); got != nil {
		t.Fatalf("k=0 should yield nil, got %v", got)
	}
	if got := ComputeK(tp, "a", "a", 2, nil); got != nil {
		t.Fatalf("self pair should yield nil, got %v", got)
	}
}

// The first route of ComputeK must agree with the plain table route when
// rates are uniform — striping K=1 then degenerates to the existing path.
func TestComputeKFirstMatchesTable(t *testing.T) {
	tp := topo.PaperTestbed()
	hs, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		t.Fatal(err)
	}
	tbl := Compute(hs)
	for _, src := range hs.NodeNames() {
		for _, dst := range hs.NodeNames() {
			if src == dst {
				continue
			}
			rs := ComputeK(hs, src, dst, 1, nil)
			want, _ := tbl.Lookup(src, dst)
			if len(rs) != 1 || !reflect.DeepEqual(rs[0], want) {
				t.Fatalf("%s->%s: ComputeK %v, table %v", src, dst, rs, want)
			}
		}
	}
}

// Determinism: repeated calls return identical route sets.
func TestComputeKDeterministic(t *testing.T) {
	tp := topo.PaperTestbed()
	first := ComputeK(tp, "a1", "b1", 3, nil)
	for i := 0; i < 5; i++ {
		if rs := ComputeK(tp, "a1", "b1", 3, nil); !reflect.DeepEqual(rs, first) {
			t.Fatalf("run %d differs: %v vs %v", i, rs, first)
		}
	}
}
