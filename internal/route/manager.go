package route

import "madgo/internal/topo"

// Manager owns the epoch-stamped routing tables a system routes by when a
// health monitor is running. Liveness constraints flow in through Publish;
// every call bumps the epoch and invalidates the cached tables, which are
// recomputed lazily (ComputeConstrained over the primary and, when present,
// the fallback topology) on the next Tables call.
//
// The simulation is single-threaded, so a Publish is atomic by construction:
// senders, gateways and the stripe scheduler all read the same Manager, and
// from the instant Publish returns every nextHop/stripe decision sees the
// new epoch. In-flight messages migrate on their next retransmit — the
// reliability layer re-resolves its hop through the Manager instead of
// burning the rest of a retry budget on an edge the detector already
// declared dead.
type Manager struct {
	primary  *topo.Topology
	fallback *topo.Topology // nil when the system has no fallback topology
	epoch    uint64
	cons     Constraints
	tables   []*Table
	dirty    bool
}

// NewManager creates a Manager routing over primary, with an optional
// fallback topology consulted for pairs the primary cannot route (mirroring
// the FallbackTopo mechanism of the forwarding layer). The initial epoch is
// 1 with empty constraints, so epoch 0 can mean "unstamped table" elsewhere.
func NewManager(primary, fallback *topo.Topology) *Manager {
	if primary == nil {
		panic("route: NewManager with nil primary topology")
	}
	if fallback == primary {
		fallback = nil
	}
	return &Manager{primary: primary, fallback: fallback, epoch: 1, dirty: true}
}

// Epoch returns the current routing epoch.
func (m *Manager) Epoch() uint64 { return m.epoch }

// Constraints returns the constraints of the current epoch. The maps are
// shared — callers must not mutate them.
func (m *Manager) Constraints() Constraints { return m.cons }

// Publish installs a new constraint set, bumps the epoch, and invalidates
// the cached tables. It returns the new epoch.
func (m *Manager) Publish(c Constraints) uint64 {
	m.cons = c
	m.epoch++
	m.dirty = true
	return m.epoch
}

// Tables returns the routing tables of the current epoch — primary first,
// then the fallback when one exists — computing them if the constraints
// changed since the last call. Each table is stamped with the epoch.
func (m *Manager) Tables() []*Table {
	if m.dirty {
		m.tables = m.tables[:0]
		for _, tp := range []*topo.Topology{m.primary, m.fallback} {
			if tp == nil {
				continue
			}
			t := ComputeConstrained(tp, m.cons)
			t.Epoch = m.epoch
			m.tables = append(m.tables, t)
		}
		m.dirty = false
	}
	return m.tables
}

// Find resolves src→dst against the current epoch's tables in order,
// returning the first hit or the last table's NoRouteError.
func (m *Manager) Find(src, dst string) (Route, error) {
	var err error
	for _, t := range m.Tables() {
		var r Route
		if r, err = t.Find(src, dst); err == nil {
			return r, nil
		}
	}
	if err == nil {
		err = &NoRouteError{Src: src, Dst: dst, Why: "no tables"}
	}
	return nil, err
}
