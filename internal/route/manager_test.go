package route

import (
	"errors"
	"testing"

	"madgo/internal/topo"
)

func managerTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").
		Node("g1", "sci0", "myri0").
		Node("g2", "sci0", "myri0").
		Node("b0", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestManagerEpochsAndConstraints(t *testing.T) {
	tp := managerTopo(t)
	m := NewManager(tp, nil)
	if m.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", m.Epoch())
	}
	tbs := m.Tables()
	if len(tbs) != 1 || tbs[0].Epoch != 1 {
		t.Fatalf("tables = %d entries, epoch %d", len(tbs), tbs[0].Epoch)
	}
	r, err := m.Find("a0", "b0")
	if err != nil || len(r) != 2 {
		t.Fatalf("a0->b0 = %v, %v", r, err)
	}
	via := r.Gateways()[0]

	// Kill the preferred gateway's cross-link: routing shifts to the other
	// gateway under a fresh epoch.
	ep := m.Publish(Constraints{Edges: map[Edge]bool{
		{From: via, To: "b0", Network: "myri0"}: true,
	}})
	if ep != 2 || m.Epoch() != 2 {
		t.Fatalf("epoch after publish = %d", m.Epoch())
	}
	if got := m.Tables()[0].Epoch; got != 2 {
		t.Fatalf("table epoch = %d, want 2", got)
	}
	r2, err := m.Find("a0", "b0")
	if err != nil || r2.Gateways()[0] == via {
		t.Fatalf("after excluding %s: route %v, err %v", via, r2, err)
	}

	// Exclude both gateways as relays: the pair becomes a typed no-route.
	m.Publish(Constraints{Relays: map[string]bool{"g1": true, "g2": true}})
	if _, err := m.Find("a0", "b0"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("partitioned pair: err = %v, want ErrNoRoute", err)
	}

	// Lifting the constraints readmits the original route on a newer epoch.
	m.Publish(Constraints{})
	r3, err := m.Find("a0", "b0")
	if err != nil || r3.Gateways()[0] != via {
		t.Fatalf("after readmission: route %v, err %v", r3, err)
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", m.Epoch())
	}
}

func TestManagerFallbackTables(t *testing.T) {
	// Primary topology misses node c entirely; the fallback covers it.
	prim, err := topo.NewBuilder().
		Network("sci0", "sci").
		Node("a0", "sci0").Node("a1", "sci0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("eth0", "ethernet").
		Node("a0", "sci0", "eth0").Node("a1", "sci0").Node("c", "eth0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(prim, fb)
	if len(m.Tables()) != 2 {
		t.Fatalf("tables = %d, want 2", len(m.Tables()))
	}
	if r, err := m.Find("a0", "a1"); err != nil || !r.Direct() {
		t.Fatalf("primary pair = %v, %v", r, err)
	}
	if r, err := m.Find("a0", "c"); err != nil || r[0].Network != "eth0" {
		t.Fatalf("fallback pair = %v, %v", r, err)
	}
	if _, err := m.Find("a0", "zz"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unknown node err = %v", err)
	}
}

func TestComputeKAvoiding(t *testing.T) {
	tp := managerTopo(t)
	// Full graph: two link-disjoint a0->b0 routes (one per gateway).
	full := ComputeK(tp, "a0", "b0", 2, nil)
	if len(full) != 2 {
		t.Fatalf("ComputeK = %d routes, want 2", len(full))
	}
	g := full[0].Gateways()[0]
	// Killing the first route's cross-cluster link leaves one route, via
	// the other gateway.
	dead := map[Edge]bool{{From: g, To: "b0", Network: "myri0"}: true}
	rs := ComputeKAvoiding(tp, "a0", "b0", 2, nil, dead)
	if len(rs) != 1 || rs[0].Gateways()[0] == g {
		t.Fatalf("avoiding %s->b0: routes %v", g, rs)
	}
	// An empty avoid set reproduces ComputeK exactly.
	again := ComputeKAvoiding(tp, "a0", "b0", 2, nil, map[Edge]bool{})
	if len(again) != len(full) {
		t.Fatalf("empty avoid changed the result: %v", again)
	}
}
