package route

import (
	"fmt"
	"sort"
	"strings"
)

// McastBranch is one egress decision of a multicast distribution tree at a
// branching node: cross Hop.Network to Hop.To, serving the subset Dests of
// the tree's destinations. Dests always contains every destination whose
// unicast next hop from the branching node is Hop; Hop.To itself is a member
// exactly when it is a final destination (it may still relay for the rest of
// the subset).
type McastBranch struct {
	Hop   Hop
	Dests []string // sorted
}

// Relays reports whether the branch needs forwarding beyond its next hop:
// some destination of the subset lies past Hop.To. A non-relaying branch is
// a leaf edge — its sole destination is the next hop itself.
func (b McastBranch) Relays() bool {
	return len(b.Dests) > 1 || b.Dests[0] != b.Hop.To
}

// McastTree is the distribution tree of one (root, destination-set) pair
// over the physical topology: the union of the unicast shortest-path routes
// from the root to every destination, grouped so that each network edge
// carries each fragment at most once. Nodes with more than one outgoing
// branch are the replication points (gateways, or the root itself).
type McastTree struct {
	Root  string
	Dests []string // all destinations, sorted, root excluded
	// Branches maps each tree node (root or relay) to its outgoing
	// branches, sorted by (network, next hop) for determinism.
	Branches map[string][]McastBranch
	// Edges is the total number of directed tree edges — the number of
	// times one fragment touches a wire, against len(Dests) for a unicast
	// fan-out of the same set.
	Edges int
	// Epoch is the liveness generation of the table the tree was derived
	// from; a cached tree is stale once the table's epoch moves past it.
	Epoch uint64
}

// ComputeMulticast derives the distribution tree for a multicast from root
// to dests over this table's unicast routes. Duplicate destinations and the
// root itself are dropped; an empty effective set or an unroutable
// destination yields a *NoRouteError. Because every per-node split follows
// NextHop of the same loop-free shortest-path table, the recursion
// terminates, the per-branch destination subsets are disjoint, and each
// destination is reached by exactly one tree path.
func (tb *Table) ComputeMulticast(root string, dests []string) (*McastTree, error) {
	if _, ok := tb.topo.Node(root); !ok {
		return nil, &NoRouteError{Src: root, Dst: strings.Join(dests, ","), Why: "unknown source"}
	}
	set := make(map[string]bool, len(dests))
	for _, d := range dests {
		if d != root {
			set[d] = true
		}
	}
	if len(set) == 0 {
		return nil, &NoRouteError{Src: root, Dst: strings.Join(dests, ","), Why: "empty destination set"}
	}
	all := make([]string, 0, len(set))
	for d := range set {
		all = append(all, d)
	}
	sort.Strings(all)
	tr := &McastTree{Root: root, Dests: all, Branches: make(map[string][]McastBranch), Epoch: tb.Epoch}
	if err := tr.grow(tb, root, all); err != nil {
		return nil, err
	}
	return tr, nil
}

// grow partitions the destination subset reaching node cur by unicast next
// hop, records the resulting branches, and recurses into every next hop that
// still has destinations beyond itself — the exact split a relaying gateway
// performs at run time, so the planned tree and the forwarded frames agree
// by construction.
func (tr *McastTree) grow(tb *Table, cur string, dests []string) error {
	type group struct {
		hop  Hop
		sub  []string
		past []string // members of sub beyond the next hop itself
	}
	var groups []*group
	byHop := make(map[Hop]*group)
	for _, d := range dests {
		hop, ok := tb.NextHop(cur, d)
		if !ok {
			_, err := tb.Find(cur, d)
			if err == nil {
				err = &NoRouteError{Src: cur, Dst: d, Why: "no path under current constraints"}
			}
			return err
		}
		g := byHop[hop]
		if g == nil {
			g = &group{hop: hop}
			byHop[hop] = g
			groups = append(groups, g)
		}
		g.sub = append(g.sub, d)
		if d != hop.To {
			g.past = append(g.past, d)
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].hop.Network != groups[j].hop.Network {
			return groups[i].hop.Network < groups[j].hop.Network
		}
		return groups[i].hop.To < groups[j].hop.To
	})
	for _, g := range groups {
		tr.Branches[cur] = append(tr.Branches[cur], McastBranch{Hop: g.hop, Dests: g.sub})
		tr.Edges++
		if len(g.past) > 0 {
			if err := tr.grow(tb, g.hop.To, g.past); err != nil {
				return err
			}
		}
	}
	return nil
}

// Relays returns the tree's interior replication nodes (every node with
// recorded branches except the root), sorted.
func (tr *McastTree) Relays() []string {
	var out []string
	for n := range tr.Branches {
		if n != tr.Root {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the tree, one branching node per line, for tooling and
// tests.
func (tr *McastTree) String() string {
	nodes := make([]string, 0, len(tr.Branches))
	for n := range tr.Branches {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var sb strings.Builder
	fmt.Fprintf(&sb, "mcast %s -> {%s} (%d edges)\n", tr.Root, strings.Join(tr.Dests, ","), tr.Edges)
	for _, n := range nodes {
		for _, b := range tr.Branches[n] {
			fmt.Fprintf(&sb, "  %s -[%s]-> %s {%s}\n", n, b.Hop.Network, b.Hop.To, strings.Join(b.Dests, ","))
		}
	}
	return sb.String()
}
