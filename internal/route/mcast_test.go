package route

import (
	"errors"
	"strings"
	"testing"

	"madgo/internal/topo"
)

// chainTable builds a 2-gateway chain with receivers on every network:
// a0,a1 on edge; c0,c1 on core; l0,l1,l2 on leaf.
func chainTable(t *testing.T) *Table {
	t.Helper()
	tp, err := topo.NewBuilder().
		Network("edge", "sci").
		Network("core", "myrinet").
		Network("leaf", "sci").
		Node("a0", "edge").Node("a1", "edge").
		Node("gw1", "edge", "core").
		Node("c0", "core").Node("c1", "core").
		Node("gw2", "core", "leaf").
		Node("l0", "leaf").Node("l1", "leaf").Node("l2", "leaf").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Compute(tp)
}

func TestComputeMulticastSpansChain(t *testing.T) {
	tb := chainTable(t)
	tr, err := tb.ComputeMulticast("a0", []string{"l2", "c0", "l0", "c1", "l1"})
	if err != nil {
		t.Fatal(err)
	}
	// Root: one branch carrying everything toward gw1.
	rb := tr.Branches["a0"]
	if len(rb) != 1 || rb[0].Hop != (Hop{Network: "edge", To: "gw1"}) || len(rb[0].Dests) != 5 {
		t.Fatalf("root branches = %+v", rb)
	}
	if !rb[0].Relays() {
		t.Fatal("root branch toward gw1 must relay")
	}
	// gw1 splits core-local destinations from the gw2 subtree.
	gb := tr.Branches["gw1"]
	if len(gb) != 3 {
		t.Fatalf("gw1 branches = %+v", gb)
	}
	var beyond []string
	for _, b := range gb {
		if b.Hop.Network != "core" {
			t.Fatalf("gw1 branch off core: %+v", b)
		}
		if b.Hop.To == "gw2" {
			beyond = b.Dests
			if !b.Relays() {
				t.Fatal("gw2 branch must relay")
			}
		} else if len(b.Dests) != 1 || b.Dests[0] != b.Hop.To || b.Relays() {
			t.Fatalf("leaf edge to core member malformed: %+v", b)
		}
	}
	if strings.Join(beyond, ",") != "l0,l1,l2" {
		t.Fatalf("gw2 subtree = %v", beyond)
	}
	// gw2 fans out to the three leaf receivers.
	if len(tr.Branches["gw2"]) != 3 {
		t.Fatalf("gw2 branches = %+v", tr.Branches["gw2"])
	}
	// Edge economy: 1 (a0->gw1) + 3 (gw1 out) + 3 (gw2 out) = 7 edges for 5
	// destinations whose unicast routes would cost 2+2+3+3+3 = 13 edges.
	if tr.Edges != 7 {
		t.Fatalf("edges = %d, want 7", tr.Edges)
	}
	if got := tr.Relays(); len(got) != 2 || got[0] != "gw1" || got[1] != "gw2" {
		t.Fatalf("relays = %v", got)
	}
	if !strings.Contains(tr.String(), "a0 -[edge]-> gw1") {
		t.Fatalf("String() = %q", tr.String())
	}
}

func TestComputeMulticastExactlyOnceDelivery(t *testing.T) {
	tb := chainTable(t)
	dests := []string{"a1", "c0", "c1", "gw2", "l0", "l1"}
	tr, err := tb.ComputeMulticast("a0", dests)
	if err != nil {
		t.Fatal(err)
	}
	// Every destination appears in exactly one branch whose next hop either
	// is the destination or relays toward it; per-node subsets are disjoint.
	count := make(map[string]int)
	for node, bs := range tr.Branches {
		seen := make(map[string]bool)
		for _, b := range bs {
			for _, d := range b.Dests {
				if seen[d] {
					t.Fatalf("%s serves %s on two branches", node, d)
				}
				seen[d] = true
				if d == b.Hop.To {
					count[d]++
				}
			}
		}
	}
	for _, d := range dests {
		if count[d] != 1 {
			t.Fatalf("destination %s delivered %d times", d, count[d])
		}
	}
	// gw2 is both a destination and a relay: its leaf branch serves l0,l1.
	if len(tr.Branches["gw2"]) != 2 {
		t.Fatalf("gw2 branches = %+v", tr.Branches["gw2"])
	}
}

func TestComputeMulticastDropsRootAndDuplicates(t *testing.T) {
	tb := chainTable(t)
	tr, err := tb.ComputeMulticast("a0", []string{"a1", "a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Dests) != 1 || tr.Dests[0] != "a1" || tr.Edges != 1 {
		t.Fatalf("tree = %+v", tr)
	}
	if tr.Branches["a0"][0].Relays() {
		t.Fatal("direct neighbour branch must not relay")
	}
}

func TestComputeMulticastErrors(t *testing.T) {
	tb := chainTable(t)
	if _, err := tb.ComputeMulticast("a0", []string{"a0"}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("empty set: %v", err)
	}
	if _, err := tb.ComputeMulticast("nope", []string{"a1"}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unknown root: %v", err)
	}
	if _, err := tb.ComputeMulticast("a0", []string{"ghost"}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unknown dest: %v", err)
	}
	// A constrained table with the only gateway removed cannot span.
	cons := ComputeConstrained(tb.topo, Constraints{Nodes: map[string]bool{"gw1": true}})
	if _, err := cons.ComputeMulticast("a0", []string{"c0"}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("partitioned: %v", err)
	}
}

func TestComputeMulticastCarriesEpoch(t *testing.T) {
	tb := chainTable(t)
	tb.Epoch = 7
	tr, err := tb.ComputeMulticast("a0", []string{"l0"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Epoch != 7 {
		t.Fatalf("epoch = %d", tr.Epoch)
	}
}
