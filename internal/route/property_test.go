package route

import (
	"fmt"
	"testing"
	"testing/quick"

	"madgo/internal/topo"
)

// randomTopology builds a random connected cluster-of-clusters: a tree of
// networks joined by gateways, with leaf nodes sprinkled on.
func randomTopology(seed uint64) (*topo.Topology, error) {
	rng := seed*0x9E3779B97F4A7C15 + 1
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	protos := []string{"sci", "myrinet", "sbp", "ethernet"}
	b := topo.NewBuilder()
	nets := 1 + int(next(5))
	for i := 0; i < nets; i++ {
		b.Network(fmt.Sprintf("n%d", i), protos[next(uint64(len(protos)))])
	}
	// Tree of gateways: network i>0 is joined to a random earlier
	// network.
	for i := 1; i < nets; i++ {
		parent := int(next(uint64(i)))
		b.Node(fmt.Sprintf("g%d", i), fmt.Sprintf("n%d", parent), fmt.Sprintf("n%d", i))
	}
	// Leaves: at least two per network so validation passes.
	leaf := 0
	for i := 0; i < nets; i++ {
		for k := 0; k < 2+int(next(3)); k++ {
			b.Node(fmt.Sprintf("l%d", leaf), fmt.Sprintf("n%d", i))
			leaf++
		}
	}
	return b.Build()
}

// Property: on random connected topologies, every ordered pair has a valid
// route — consecutive legs share the claimed network and the path ends at
// the destination — and route lengths are symmetric.
func TestRandomTopologyRoutesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tp, err := randomTopology(seed)
		if err != nil {
			t.Logf("seed %d: invalid topology: %v", seed, err)
			return false
		}
		tb := Compute(tp)
		names := tp.NodeNames()
		for _, src := range names {
			for _, dst := range names {
				if src == dst {
					continue
				}
				r, ok := tb.Lookup(src, dst)
				if !ok || len(r) == 0 {
					return false
				}
				cur := src
				for _, hop := range r {
					if !onNetwork(tp, cur, hop.Network) || !onNetwork(tp, hop.To, hop.Network) {
						return false
					}
					cur = hop.To
				}
				if cur != dst {
					return false
				}
				back, _ := tb.Lookup(dst, src)
				if len(back) != len(r) {
					return false // BFS shortest paths are length-symmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func onNetwork(tp *topo.Topology, node, network string) bool {
	n, ok := tp.Node(node)
	if !ok {
		return false
	}
	for _, nw := range n.Networks {
		if nw == network {
			return true
		}
	}
	return false
}
