// Package route computes the high-level routing tables that the paper says
// "can easily and efficiently be implemented on top of Madeleine" once the
// forwarding mechanism exists: for every ordered node pair, the sequence of
// network hops (through gateways) a message must take.
package route

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"madgo/internal/topo"
)

// ErrNoRoute is the sentinel wrapped by every routing failure: no path from
// source to destination under the table's constraints. Callers match it with
// errors.Is; the reliability layer surfaces it through DeliveryError when
// every retry exhausted connectivity, turning what used to be a stall (or a
// panic on a malformed query) into a typed, inspectable error.
var ErrNoRoute = errors.New("route: no route")

// NoRouteError carries the detail behind an ErrNoRoute: which pair failed
// and why (unknown node, self-route, or constraints excluding every path).
type NoRouteError struct {
	Src, Dst string
	Why      string
}

func (e *NoRouteError) Error() string {
	return fmt.Sprintf("route: no route %s -> %s: %s", e.Src, e.Dst, e.Why)
}

// Unwrap makes errors.Is(err, ErrNoRoute) hold for every NoRouteError.
func (e *NoRouteError) Unwrap() error { return ErrNoRoute }

// Hop is one leg of a route: cross Network to reach To.
type Hop struct {
	Network string
	To      string
}

// Route is the full path from a source to a destination. A direct route has
// one hop; each additional hop crosses one more gateway.
type Route []Hop

// Direct reports whether the route needs no forwarding.
func (r Route) Direct() bool { return len(r) == 1 }

// Gateways returns the intermediate nodes, in order.
func (r Route) Gateways() []string {
	if len(r) <= 1 {
		return nil
	}
	gws := make([]string, 0, len(r)-1)
	for _, h := range r[:len(r)-1] {
		gws = append(gws, h.To)
	}
	return gws
}

func (r Route) String() string {
	var sb strings.Builder
	for i, h := range r {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "-[%s]-> %s", h.Network, h.To)
	}
	return sb.String()
}

// Edge identifies one directed link of the route graph: From transmitting
// to To across Network. Directed on purpose — a failed send says nothing
// about the reverse direction.
type Edge struct {
	From, To, Network string
}

func (e Edge) String() string { return e.From + ">" + e.To + "@" + e.Network }

// Table holds the routes of every ordered node pair of a topology.
type Table struct {
	topo   *topo.Topology
	netIdx map[string]int
	routes map[[2]string]Route
	avoid  map[string]bool
	avoidR map[string]bool
	avoidE map[Edge]bool

	// Epoch stamps the liveness generation this table was computed for.
	// Tables built directly by Compute/ComputeConstrained carry epoch 0;
	// the Manager stamps every table it publishes with its current epoch so
	// senders can tell a stale cached table from the live one.
	Epoch uint64
}

// Compute builds the routing table with breadth-first search over the
// node/network graph. Ties are broken by network declaration order first
// (declare fast networks before slow control networks, as the paper's
// static configuration does), then by node name, so tables are
// deterministic and symmetric paths mirror each other.
func Compute(t *topo.Topology) *Table {
	return ComputeAvoiding(t, nil)
}

// ComputeAvoiding builds a routing table that routes around the given set of
// nodes: avoided nodes appear as neither source, destination nor intermediate
// hop of any route. The reliability layer uses it to recompute paths once a
// gateway is presumed dead; pairs that only connect through avoided nodes
// simply come back unreachable from Lookup (ok=false), never as a panic.
func ComputeAvoiding(t *topo.Topology, avoid map[string]bool) *Table {
	return ComputeConstrained(t, Constraints{Nodes: avoid})
}

// Constraints restricts which parts of the graph a table may route over.
type Constraints struct {
	// Nodes are excluded entirely: neither source, destination nor
	// intermediate hop of any route.
	Nodes map[string]bool
	// Relays are excluded as intermediate hops but stay valid
	// destinations. The reliability layer puts a neighbour here after a
	// failed burst: whether the node crashed or just one link to it died,
	// nothing should be routed *through* it on the available evidence —
	// but writing it off as a destination would be wrong when only the
	// link is down.
	Relays map[string]bool
	// Edges are individual directed links excluded as route legs; their
	// endpoints stay reachable through other links.
	Edges map[Edge]bool
}

// ComputeConstrained builds a routing table honouring the given constraints.
func ComputeConstrained(t *topo.Topology, c Constraints) *Table {
	tb := &Table{topo: t, netIdx: make(map[string]int), routes: make(map[[2]string]Route),
		avoid: c.Nodes, avoidR: c.Relays, avoidE: c.Edges}
	for i, n := range t.Networks() {
		tb.netIdx[n.Name] = i
	}
	names := t.NodeNames()
	for _, src := range names {
		if tb.avoid[src] {
			continue
		}
		tb.computeFrom(src)
	}
	return tb
}

// neighbor is a candidate next leg during the BFS.
type neighbor struct {
	network string
	node    string
}

func (tb *Table) computeFrom(src string) {
	t := tb.topo
	type state struct {
		prev string // previous node on the path
		via  string // network used to reach this node
	}
	visited := map[string]state{src: {}}
	frontier := []string{src}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			node, _ := t.Node(cur)
			var hops []neighbor
			for _, nw := range node.Networks {
				net, _ := t.Network(nw)
				for _, peer := range net.Members {
					if peer == cur || tb.avoid[peer] {
						continue
					}
					if tb.avoidE[Edge{From: cur, To: peer, Network: nw}] {
						continue
					}
					hops = append(hops, neighbor{network: nw, node: peer})
				}
			}
			// Deterministic exploration order: preferred (earlier
			// declared) networks first.
			sort.Slice(hops, func(i, j int) bool {
				if a, b := tb.netIdx[hops[i].network], tb.netIdx[hops[j].network]; a != b {
					return a < b
				}
				return hops[i].node < hops[j].node
			})
			for _, h := range hops {
				if _, seen := visited[h.node]; seen {
					continue
				}
				visited[h.node] = state{prev: cur, via: h.network}
				// Suspect relays are reachable as destinations but
				// never expanded through.
				if !tb.avoidR[h.node] {
					next = append(next, h.node)
				}
			}
		}
		frontier = next
	}
	for dst, st := range visited {
		if dst == src {
			continue
		}
		var rev Route
		for cur := dst; cur != src; {
			s := visited[cur]
			rev = append(rev, Hop{Network: s.via, To: cur})
			cur = s.prev
		}
		// Reverse into src→dst order.
		r := make(Route, len(rev))
		for i := range rev {
			r[i] = rev[len(rev)-1-i]
		}
		tb.routes[[2]string{src, dst}] = r
		_ = st
	}
}

// Find returns the route from src to dst, or a *NoRouteError (matching
// ErrNoRoute via errors.Is) describing why none exists: unknown nodes,
// a self-route query, or constraints that exclude every path.
func (tb *Table) Find(src, dst string) (Route, error) {
	if src == dst {
		return nil, &NoRouteError{Src: src, Dst: dst, Why: "self-route"}
	}
	if _, ok := tb.topo.Node(src); !ok {
		return nil, &NoRouteError{Src: src, Dst: dst, Why: "unknown source"}
	}
	if _, ok := tb.topo.Node(dst); !ok {
		return nil, &NoRouteError{Src: src, Dst: dst, Why: "unknown destination"}
	}
	r, ok := tb.routes[[2]string{src, dst}]
	if !ok {
		return nil, &NoRouteError{Src: src, Dst: dst, Why: "no path under current constraints"}
	}
	return r, nil
}

// Lookup returns the route from src to dst. It is Find without the error
// detail: ok=false covers unreachable pairs as well as unknown nodes and
// self-route queries (which used to panic — a table consulted with a
// fallback topology's nodes, or after constraints emptied the graph, is a
// routing miss to recover from, not a programming error).
func (tb *Table) Lookup(src, dst string) (Route, bool) {
	r, err := tb.Find(src, dst)
	return r, err == nil
}

// NextHop returns the first leg from src toward dst.
func (tb *Table) NextHop(src, dst string) (Hop, bool) {
	r, ok := tb.Lookup(src, dst)
	if !ok || len(r) == 0 {
		return Hop{}, false
	}
	return r[0], true
}

// MaxHops returns the longest route length in the table (diagnostics).
func (tb *Table) MaxHops() int {
	max := 0
	for _, r := range tb.routes {
		if len(r) > max {
			max = len(r)
		}
	}
	return max
}

// String renders every route, sorted, one per line.
func (tb *Table) String() string {
	keys := make([][2]string, 0, len(tb.routes))
	for k := range tb.routes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %s\n", k[0], tb.routes[k])
	}
	return sb.String()
}
