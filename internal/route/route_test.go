package route

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"madgo/internal/topo"
)

func paperTable(t *testing.T) *Table {
	t.Helper()
	// The two high-speed networks only (no ethernet everywhere), so the
	// forwarding path is the interesting one.
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").Node("a1", "sci0").
		Node("gw", "sci0", "myri0").
		Node("b0", "myri0").Node("b1", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Compute(tp)
}

func TestDirectRoute(t *testing.T) {
	tb := paperTable(t)
	r, ok := tb.Lookup("a0", "a1")
	if !ok || !r.Direct() || r[0].Network != "sci0" || r[0].To != "a1" {
		t.Fatalf("a0->a1 = %v, %v", r, ok)
	}
	if gws := r.Gateways(); len(gws) != 0 {
		t.Fatalf("direct route has gateways %v", gws)
	}
}

func TestForwardedRoute(t *testing.T) {
	tb := paperTable(t)
	r, ok := tb.Lookup("a0", "b1")
	if !ok || len(r) != 2 {
		t.Fatalf("a0->b1 = %v, %v", r, ok)
	}
	if r[0] != (Hop{Network: "sci0", To: "gw"}) || r[1] != (Hop{Network: "myri0", To: "b1"}) {
		t.Fatalf("a0->b1 = %v", r)
	}
	if gws := r.Gateways(); len(gws) != 1 || gws[0] != "gw" {
		t.Fatalf("gateways = %v", gws)
	}
	// And the reverse mirrors it.
	rr, _ := tb.Lookup("b1", "a0")
	if len(rr) != 2 || rr[0] != (Hop{Network: "myri0", To: "gw"}) || rr[1] != (Hop{Network: "sci0", To: "a0"}) {
		t.Fatalf("b1->a0 = %v", rr)
	}
}

func TestGatewayEndpointRoutes(t *testing.T) {
	tb := paperTable(t)
	// To and from the gateway itself: always direct.
	r, _ := tb.Lookup("a0", "gw")
	if !r.Direct() || r[0].Network != "sci0" {
		t.Fatalf("a0->gw = %v", r)
	}
	r, _ = tb.Lookup("gw", "b0")
	if !r.Direct() || r[0].Network != "myri0" {
		t.Fatalf("gw->b0 = %v", r)
	}
}

func TestMultiGatewayChain(t *testing.T) {
	tp, err := topo.NewBuilder().
		Network("n1", "sci").Network("n2", "myrinet").Network("n3", "sbp").
		Node("a", "n1").
		Node("g1", "n1", "n2").
		Node("g2", "n2", "n3").
		Node("c", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := Compute(tp)
	r, ok := tb.Lookup("a", "c")
	if !ok || len(r) != 3 {
		t.Fatalf("a->c = %v", r)
	}
	want := Route{{Network: "n1", To: "g1"}, {Network: "n2", To: "g2"}, {Network: "n3", To: "c"}}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("a->c = %v, want %v", r, want)
		}
	}
	if tb.MaxHops() != 3 {
		t.Fatalf("MaxHops = %d", tb.MaxHops())
	}
	hop, ok := tb.NextHop("a", "c")
	if !ok || hop != want[0] {
		t.Fatalf("NextHop = %v", hop)
	}
}

func TestFindNoRoute(t *testing.T) {
	tb := paperTable(t)
	for name, pair := range map[string][2]string{
		"self":        {"a0", "a0"},
		"unknown src": {"zz", "a0"},
		"unknown dst": {"a0", "zz"},
	} {
		r, err := tb.Find(pair[0], pair[1])
		if err == nil || r != nil {
			t.Errorf("%s: Find(%s,%s) = %v, %v; want ErrNoRoute", name, pair[0], pair[1], r, err)
			continue
		}
		if !errors.Is(err, ErrNoRoute) {
			t.Errorf("%s: error %v does not match ErrNoRoute", name, err)
		}
		var nre *NoRouteError
		if !errors.As(err, &nre) || nre.Src != pair[0] || nre.Dst != pair[1] {
			t.Errorf("%s: error %v is not a NoRouteError for the pair", name, err)
		}
		// Lookup mirrors Find as ok=false, never a panic.
		if _, ok := tb.Lookup(pair[0], pair[1]); ok {
			t.Errorf("%s: Lookup succeeded", name)
		}
	}
	// A reachable pair carries no error.
	if _, err := tb.Find("a0", "b1"); err != nil {
		t.Errorf("Find(a0,b1) = %v", err)
	}
}

func TestStringListsAllPairs(t *testing.T) {
	tb := paperTable(t)
	s := tb.String()
	// 5 nodes -> 20 ordered pairs.
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != 20 {
		t.Fatalf("routes listed = %d, want 20\n%s", got, s)
	}
}

// Property: on the paper testbed every route is valid — consecutive legs
// share the claimed network, the path ends at the destination, and every
// intermediate node is a gateway of its two adjacent networks.
func TestRouteValidityProperty(t *testing.T) {
	tp := topo.PaperTestbed()
	tb := Compute(tp)
	names := tp.NodeNames()
	f := func(i, j uint8) bool {
		src := names[int(i)%len(names)]
		dst := names[int(j)%len(names)]
		if src == dst {
			return true
		}
		r, ok := tb.Lookup(src, dst)
		if !ok || len(r) == 0 {
			return false
		}
		cur := src
		for _, hop := range r {
			curNode, ok := tp.Node(cur)
			if !ok {
				return false
			}
			nextNode, ok := tp.Node(hop.To)
			if !ok {
				return false
			}
			onNet := func(n *topo.Node) bool {
				for _, nw := range n.Networks {
					if nw == hop.Network {
						return true
					}
				}
				return false
			}
			if !onNet(curNode) || !onNet(nextNode) {
				return false
			}
			cur = hop.To
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	tp := topo.PaperTestbed()
	a := Compute(tp).String()
	for i := 0; i < 3; i++ {
		if b := Compute(tp).String(); a != b {
			t.Fatal("routing table not deterministic")
		}
	}
}

func TestComputeAvoiding(t *testing.T) {
	// Two parallel gateways between the clusters: avoiding one must route
	// every cross-cluster pair through the other.
	tp, err := topo.NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Node("a0", "sci0").
		Node("g1", "sci0", "myri0").
		Node("g2", "sci0", "myri0").
		Node("b0", "myri0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	full := Compute(tp)
	r, ok := full.Lookup("a0", "b0")
	if !ok {
		t.Fatal("a0->b0 unroutable in the full table")
	}
	preferred := r.Gateways()[0]
	other := "g2"
	if preferred == "g2" {
		other = "g1"
	}

	avoided := ComputeAvoiding(tp, map[string]bool{preferred: true})
	r, ok = avoided.Lookup("a0", "b0")
	if !ok {
		t.Fatalf("a0->b0 unroutable while avoiding %s", preferred)
	}
	if gws := r.Gateways(); len(gws) != 1 || gws[0] != other {
		t.Errorf("avoiding %s routed via %v, want [%s]", preferred, gws, other)
	}

	// Avoiding both gateways partitions the clusters: the pair stays
	// known (no panic) but unroutable.
	none := ComputeAvoiding(tp, map[string]bool{"g1": true, "g2": true})
	if _, ok := none.Lookup("a0", "b0"); ok {
		t.Error("a0->b0 routable with every gateway avoided")
	}
	// Routes from an avoided node itself are dropped too.
	if _, ok := none.Lookup("g1", "a0"); ok {
		t.Error("route from an avoided source survived")
	}
	// ... and so are routes to it: a presumed-dead node receives nothing.
	if _, ok := none.Lookup("a0", "g1"); ok {
		t.Error("route to an avoided destination survived")
	}
	// Traffic between live nodes of one cluster is untouched.
	if r, ok := none.Lookup("a0", "b0"); ok || len(r) != 0 {
		t.Errorf("partitioned pair = %v, %v", r, ok)
	}
}

func TestComputeAvoidingNil(t *testing.T) {
	tp, err := topo.NewBuilder().
		Network("n0", "sci").
		Node("x", "n0").Node("y", "n0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if ComputeAvoiding(tp, nil).String() != Compute(tp).String() {
		t.Error("ComputeAvoiding(nil) differs from Compute")
	}
}
