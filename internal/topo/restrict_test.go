package topo

import (
	"strings"
	"testing"
)

func TestRestrictToHighSpeedNetworks(t *testing.T) {
	tp := PaperTestbed()
	hs, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(hs.Networks()); got != 2 {
		t.Fatalf("networks = %d", got)
	}
	// All nine nodes are on at least one high-speed network.
	if got := len(hs.Nodes()); got != 9 {
		t.Fatalf("nodes = %d", got)
	}
	gwNode, ok := hs.Node("gw")
	if !ok || len(gwNode.Networks) != 2 {
		t.Fatalf("gw = %+v", gwNode)
	}
	if strings.Contains(hs.String(), "eth0") {
		t.Fatal("restricted topology still mentions eth0")
	}
}

func TestRestrictDropsUnattachedNodes(t *testing.T) {
	tp, err := NewBuilder().
		Network("fast", "sci").
		Network("slow", "ethernet").
		Node("x", "fast", "slow").
		Node("y", "fast").
		Node("z", "slow"). // z is only on the slow network
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tp.Restrict("fast")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.Node("z"); ok {
		t.Fatal("z survived the restriction")
	}
	if got := len(sub.Nodes()); got != 2 {
		t.Fatalf("nodes = %d", got)
	}
}

func TestRestrictErrors(t *testing.T) {
	tp := PaperTestbed()
	if _, err := tp.Restrict("warp0"); err == nil {
		t.Error("expected error for unknown network")
	}
	// Restricting so hard the result is invalid (one node) must fail
	// validation rather than produce a broken topology.
	tiny, err := NewBuilder().
		Network("n1", "sci").Network("n2", "sci").
		Node("a", "n1").Node("b", "n1").Node("c", "n2").Node("d", "n2", "n1").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Restrict("n2"); err != nil {
		t.Fatalf("n2 restriction should be valid (c,d): %v", err)
	}
}

func TestGatewaysSortedAndComplete(t *testing.T) {
	tp, err := NewBuilder().
		Network("n1", "sci").Network("n2", "myrinet").Network("n3", "sbp").
		Node("z", "n1", "n2").
		Node("a", "n2", "n3").
		Node("m", "n1").
		Node("q", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	gws := tp.Gateways()
	if len(gws) != 2 || gws[0] != "a" || gws[1] != "z" {
		t.Fatalf("gateways = %v, want [a z]", gws)
	}
}

func TestSharedNetworksUnknownNodes(t *testing.T) {
	tp := PaperTestbed()
	if s := tp.SharedNetworks("a0", "ghost"); s != nil {
		t.Fatalf("shared with ghost = %v", s)
	}
	if s := tp.SharedNetworks("ghost", "a0"); s != nil {
		t.Fatalf("shared from ghost = %v", s)
	}
}

func TestNetworkLookup(t *testing.T) {
	tp := PaperTestbed()
	if _, ok := tp.Network("sci0"); !ok {
		t.Fatal("sci0 missing")
	}
	if _, ok := tp.Network("nope"); ok {
		t.Fatal("phantom network found")
	}
	if names := tp.NodeNames(); len(names) != 9 || names[0] != "a0" {
		t.Fatalf("names = %v", names)
	}
}
