// Package topo describes cluster-of-clusters configurations: networks,
// nodes, which node carries which NICs, and therefore which nodes are
// gateways. The forwarding layer consumes a validated Topology to build its
// virtual channels; the cmd tools parse the same textual format the paper's
// static configuration files play the role of.
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"madgo/internal/fault"
	"madgo/internal/vtime"
)

// Network is one physical interconnect instance in the configuration.
type Network struct {
	Name     string
	Protocol string // "myrinet", "sci", "ethernet", "sbp", "loopback"
	Members  []string
}

// Node is one machine of the configuration.
type Node struct {
	Name     string
	Networks []string // attachment order is preserved
}

// IsGateway reports whether the node bridges at least two networks.
func (n *Node) IsGateway() bool { return len(n.Networks) >= 2 }

// Topology is a validated cluster-of-clusters description.
type Topology struct {
	networks map[string]*Network
	nodes    map[string]*Node
	netOrder []string
	nodeOrd  []string

	// Faults is the fault schedule declared alongside the configuration
	// (the `fault ...` DSL directives), nil when none was given. It rides
	// on the topology so a single config file fully describes an
	// experiment; Restrict carries it over unchanged.
	Faults *fault.Plan
}

// Builder accumulates a topology declaratively.
type Builder struct {
	t    *Topology
	errs []string
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{
		networks: make(map[string]*Network),
		nodes:    make(map[string]*Node),
	}}
}

// Network declares an interconnect instance.
func (b *Builder) Network(name, protocol string) *Builder {
	if name == "" || protocol == "" {
		b.errs = append(b.errs, "network needs a name and a protocol")
		return b
	}
	if _, dup := b.t.networks[name]; dup {
		b.errs = append(b.errs, "duplicate network "+name)
		return b
	}
	b.t.networks[name] = &Network{Name: name, Protocol: protocol}
	b.t.netOrder = append(b.t.netOrder, name)
	return b
}

// Node declares a machine attached to the given networks.
func (b *Builder) Node(name string, networks ...string) *Builder {
	if name == "" {
		b.errs = append(b.errs, "node needs a name")
		return b
	}
	if _, dup := b.t.nodes[name]; dup {
		b.errs = append(b.errs, "duplicate node "+name)
		return b
	}
	if len(networks) == 0 {
		b.errs = append(b.errs, "node "+name+" is attached to no network")
		return b
	}
	seen := make(map[string]bool)
	for _, nw := range networks {
		net, ok := b.t.networks[nw]
		if !ok {
			b.errs = append(b.errs, fmt.Sprintf("node %s references unknown network %s", name, nw))
			continue
		}
		if seen[nw] {
			b.errs = append(b.errs, fmt.Sprintf("node %s attached to network %s twice", name, nw))
			continue
		}
		seen[nw] = true
		net.Members = append(net.Members, name)
	}
	b.t.nodes[name] = &Node{Name: name, Networks: networks}
	b.t.nodeOrd = append(b.t.nodeOrd, name)
	return b
}

// Build validates and returns the topology. Validation requires at least
// two nodes, every network to have at least two members, and the whole
// configuration to be connected (every node reachable from every other via
// shared networks and gateways).
func (b *Builder) Build() (*Topology, error) {
	t := b.t
	errs := append([]string(nil), b.errs...)
	if len(t.nodes) < 2 {
		errs = append(errs, "topology needs at least two nodes")
	}
	for _, name := range t.netOrder {
		if n := t.networks[name]; len(n.Members) < 2 {
			errs = append(errs, fmt.Sprintf("network %s has %d member(s), need at least 2", name, len(n.Members)))
		}
	}
	if len(errs) == 0 && !t.connected() {
		errs = append(errs, "topology is not connected: some nodes cannot reach each other through gateways")
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("topo: invalid configuration:\n  %s", strings.Join(errs, "\n  "))
	}
	return t, nil
}

// connected checks reachability over the node/network bipartite graph.
func (t *Topology) connected() bool {
	if len(t.nodeOrd) == 0 {
		return true
	}
	seen := map[string]bool{t.nodeOrd[0]: true}
	queue := []string{t.nodeOrd[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nw := range t.nodes[cur].Networks {
			for _, peer := range t.networks[nw].Members {
				if !seen[peer] {
					seen[peer] = true
					queue = append(queue, peer)
				}
			}
		}
	}
	return len(seen) == len(t.nodes)
}

// Networks returns the networks in declaration order.
func (t *Topology) Networks() []*Network {
	out := make([]*Network, 0, len(t.netOrder))
	for _, n := range t.netOrder {
		out = append(out, t.networks[n])
	}
	return out
}

// Nodes returns the nodes in declaration order.
func (t *Topology) Nodes() []*Node {
	out := make([]*Node, 0, len(t.nodeOrd))
	for _, n := range t.nodeOrd {
		out = append(out, t.nodes[n])
	}
	return out
}

// NodeNames returns the node names in declaration order.
func (t *Topology) NodeNames() []string { return append([]string(nil), t.nodeOrd...) }

// Network looks up a network by name.
func (t *Topology) Network(name string) (*Network, bool) {
	n, ok := t.networks[name]
	return n, ok
}

// Node looks up a node by name.
func (t *Topology) Node(name string) (*Node, bool) {
	n, ok := t.nodes[name]
	return n, ok
}

// Gateways returns the names of all gateway nodes, sorted.
func (t *Topology) Gateways() []string {
	var gws []string
	for _, name := range t.nodeOrd {
		if t.nodes[name].IsGateway() {
			gws = append(gws, name)
		}
	}
	sort.Strings(gws)
	return gws
}

// SharedNetworks returns the networks both nodes are attached to, in the
// first node's attachment order.
func (t *Topology) SharedNetworks(a, b string) []string {
	nb, ok := t.nodes[b]
	if !ok {
		return nil
	}
	onB := make(map[string]bool, len(nb.Networks))
	for _, nw := range nb.Networks {
		onB[nw] = true
	}
	var shared []string
	na, ok := t.nodes[a]
	if !ok {
		return nil
	}
	for _, nw := range na.Networks {
		if onB[nw] {
			shared = append(shared, nw)
		}
	}
	return shared
}

// String renders the topology in the textual configuration format Parse
// accepts. The fault schedule, if any, is not rendered.
func (t *Topology) String() string {
	var sb strings.Builder
	for _, name := range t.netOrder {
		n := t.networks[name]
		fmt.Fprintf(&sb, "network %s %s\n", n.Name, n.Protocol)
	}
	for _, name := range t.nodeOrd {
		n := t.nodes[name]
		fmt.Fprintf(&sb, "node %s %s\n", n.Name, strings.Join(n.Networks, " "))
	}
	return sb.String()
}

// Parse reads the textual configuration format:
//
//	# comment
//	network <name> <protocol>
//	node <name> <network> [<network>...]
//	fault seed <n>
//	fault drop <network|*> <probability>
//	fault corrupt <network|*> <probability>
//	fault flap <network> <at> <for>
//	fault stall <node> <at> <for> <delay>
//	fault crash <node> <at> [<for>]
//
// Times and durations use Go duration syntax ("10ms", "1.5s"). A crash
// without <for> is permanent. Any fault directive attaches a schedule to the
// returned Topology's Faults field; without one, Faults stays nil.
func Parse(text string) (*Topology, error) {
	b := NewBuilder()
	var plan *fault.Plan
	faults := func() *fault.Plan {
		if plan == nil {
			plan = fault.NewPlan(0)
		}
		return plan
	}
	for lineno, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "network":
			if len(fields) != 3 {
				return nil, fmt.Errorf("topo: line %d: network wants <name> <protocol>", lineno+1)
			}
			b.Network(fields[1], fields[2])
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("topo: line %d: node wants <name> <network>...", lineno+1)
			}
			b.Node(fields[1], fields[2:]...)
		case "fault":
			if err := parseFault(faults, fields[1:]); err != nil {
				return nil, fmt.Errorf("topo: line %d: %v", lineno+1, err)
			}
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineno+1, fields[0])
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("topo: %v", err)
		}
		// The plan is well-formed; now pin its targets to the topology.
		for _, r := range plan.Rules {
			if r.Net != "" && r.Net != "*" {
				if _, ok := t.Network(r.Net); !ok {
					return nil, fmt.Errorf("topo: fault rule names unknown network %q", r.Net)
				}
			}
			if r.Node != "" {
				if _, ok := t.Node(r.Node); !ok {
					return nil, fmt.Errorf("topo: fault rule names unknown node %q", r.Node)
				}
			}
		}
		t.Faults = plan
	}
	return t, nil
}

// parseFault handles one `fault ...` directive (the leading keyword already
// stripped).
func parseFault(plan func() *fault.Plan, f []string) error {
	dur := func(s string) (vtime.Duration, error) {
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q: %v", s, err)
		}
		return vtime.Duration(d.Nanoseconds()), nil
	}
	at := func(s string) (vtime.Time, error) {
		d, err := dur(s)
		return vtime.Time(d), err
	}
	prob := func(s string) (float64, error) {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad probability %q: %v", s, err)
		}
		return p, nil
	}
	if len(f) == 0 {
		return fmt.Errorf("fault wants a subdirective (seed, drop, corrupt, flap, stall, crash)")
	}
	switch f[0] {
	case "seed":
		if len(f) != 2 {
			return fmt.Errorf("fault seed wants <n>")
		}
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %v", f[1], err)
		}
		plan().Seed = n
	case "drop", "corrupt":
		if len(f) != 3 {
			return fmt.Errorf("fault %s wants <network|*> <probability>", f[0])
		}
		p, err := prob(f[2])
		if err != nil {
			return err
		}
		if f[0] == "drop" {
			plan().Drop(f[1], p)
		} else {
			plan().Corrupt(f[1], p)
		}
	case "flap":
		if len(f) != 4 {
			return fmt.Errorf("fault flap wants <network> <at> <for>")
		}
		t0, err := at(f[2])
		if err != nil {
			return err
		}
		d, err := dur(f[3])
		if err != nil {
			return err
		}
		plan().Flap(f[1], t0, d)
	case "stall":
		if len(f) != 5 {
			return fmt.Errorf("fault stall wants <node> <at> <for> <delay>")
		}
		t0, err := at(f[2])
		if err != nil {
			return err
		}
		d, err := dur(f[3])
		if err != nil {
			return err
		}
		delay, err := dur(f[4])
		if err != nil {
			return err
		}
		plan().Stall(f[1], t0, d, delay)
	case "crash":
		if len(f) != 3 && len(f) != 4 {
			return fmt.Errorf("fault crash wants <node> <at> [<for>]")
		}
		t0, err := at(f[2])
		if err != nil {
			return err
		}
		var d vtime.Duration // zero = permanent
		if len(f) == 4 {
			if d, err = dur(f[3]); err != nil {
				return err
			}
		}
		plan().Crash(f[1], t0, d)
	default:
		return fmt.Errorf("unknown fault subdirective %q", f[0])
	}
	return nil
}

// Restrict returns a sub-topology containing only the named networks and
// the nodes attached to at least one of them — how a virtual channel is
// scoped to the high-speed networks while a control network (Ethernet)
// exists alongside. The result is re-validated.
func (t *Topology) Restrict(nets ...string) (*Topology, error) {
	keep := make(map[string]bool, len(nets))
	for _, n := range nets {
		if _, ok := t.networks[n]; !ok {
			return nil, fmt.Errorf("topo: restrict to unknown network %s", n)
		}
		keep[n] = true
	}
	b := NewBuilder()
	for _, name := range t.netOrder {
		if keep[name] {
			b.Network(name, t.networks[name].Protocol)
		}
	}
	for _, name := range t.nodeOrd {
		var attached []string
		for _, nw := range t.nodes[name].Networks {
			if keep[nw] {
				attached = append(attached, nw)
			}
		}
		if len(attached) > 0 {
			b.Node(name, attached...)
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, err
	}
	sub.Faults = t.Faults
	return sub, nil
}

// PaperTestbed returns the evaluation configuration of §3: a four-node SCI
// cluster, a four-node Myrinet cluster, a gateway holding both NICs, and a
// Fast-Ethernet control network spanning everything (the ping ack path).
func PaperTestbed() *Topology {
	b := NewBuilder().
		Network("sci0", "sci").
		Network("myri0", "myrinet").
		Network("eth0", "ethernet")
	// SCI cluster.
	for _, n := range []string{"a0", "a1", "a2", "a3"} {
		b.Node(n, "sci0", "eth0")
	}
	// The gateway carries one SCI and one Myrinet card.
	b.Node("gw", "sci0", "myri0", "eth0")
	// Myrinet cluster.
	for _, n := range []string{"b0", "b1", "b2", "b3"} {
		b.Node(n, "myri0", "eth0")
	}
	t, err := b.Build()
	if err != nil {
		panic(err) // the embedded testbed is always valid
	}
	return t
}
