package topo

import (
	"strings"
	"testing"

	"madgo/internal/fault"
	"madgo/internal/vtime"
)

func TestPaperTestbed(t *testing.T) {
	tp := PaperTestbed()
	if got := len(tp.Nodes()); got != 9 {
		t.Fatalf("nodes = %d, want 9", got)
	}
	if got := len(tp.Networks()); got != 3 {
		t.Fatalf("networks = %d, want 3", got)
	}
	gws := tp.Gateways()
	// Every node is on eth0+cluster net, so only "gw" bridges the two
	// high-speed networks — but IsGateway counts any multi-homed node.
	// All nodes carry eth0 plus a cluster network, so all are gateways
	// in the graph sense; the forwarding layer picks per virtual
	// channel. Here we just check gw is among them and on all three.
	found := false
	for _, g := range gws {
		if g == "gw" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gateways = %v, missing gw", gws)
	}
	n, _ := tp.Node("gw")
	if len(n.Networks) != 3 {
		t.Fatalf("gw networks = %v", n.Networks)
	}
	if shared := tp.SharedNetworks("a0", "a1"); len(shared) != 2 || shared[0] != "sci0" {
		t.Fatalf("SharedNetworks(a0,a1) = %v", shared)
	}
	if shared := tp.SharedNetworks("a0", "b0"); len(shared) != 1 || shared[0] != "eth0" {
		t.Fatalf("SharedNetworks(a0,b0) = %v", shared)
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := map[string]func() *Builder{
		"too few nodes": func() *Builder {
			return NewBuilder().Network("n", "sci").Node("a", "n")
		},
		"single-member network": func() *Builder {
			return NewBuilder().Network("n", "sci").Network("m", "sci").
				Node("a", "n", "m").Node("b", "m")
		},
		"unknown network": func() *Builder {
			return NewBuilder().Network("n", "sci").Node("a", "zz").Node("b", "n")
		},
		"duplicate network": func() *Builder {
			return NewBuilder().Network("n", "sci").Network("n", "sci").
				Node("a", "n").Node("b", "n")
		},
		"duplicate node": func() *Builder {
			return NewBuilder().Network("n", "sci").Node("a", "n").Node("a", "n").Node("b", "n")
		},
		"double attachment": func() *Builder {
			return NewBuilder().Network("n", "sci").Node("a", "n", "n").Node("b", "n")
		},
		"nodeless node": func() *Builder {
			return NewBuilder().Network("n", "sci").Node("a").Node("b", "n")
		},
		"disconnected": func() *Builder {
			return NewBuilder().Network("n", "sci").Network("m", "myrinet").
				Node("a", "n").Node("b", "n").Node("c", "m").Node("d", "m")
		},
	}
	for name, mk := range cases {
		if _, err := mk().Build(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestConnectedViaGateway(t *testing.T) {
	tp, err := NewBuilder().
		Network("n", "sci").Network("m", "myrinet").
		Node("a", "n").Node("g", "n", "m").Node("b", "m").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if gws := tp.Gateways(); len(gws) != 1 || gws[0] != "g" {
		t.Fatalf("gateways = %v", gws)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# the paper's testbed, abridged
network sci0 sci
network myri0 myrinet

node a0 sci0
node gw sci0 myri0
node b0 myri0
`
	tp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(tp.String())
	if err != nil {
		t.Fatalf("reparse of String() failed: %v\n%s", err, tp.String())
	}
	if tp.String() != again.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", tp.String(), again.String())
	}
	n, ok := tp.Node("gw")
	if !ok || !n.IsGateway() {
		t.Fatal("gw not parsed as gateway")
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad directive":  "frobnicate x y",
		"short network":  "network onlyname",
		"short node":     "network n sci\nnode a",
		"invalid config": "network n sci\nnode a n",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestStringFormat(t *testing.T) {
	tp := PaperTestbed()
	s := tp.String()
	if !strings.Contains(s, "network sci0 sci") || !strings.Contains(s, "node gw sci0 myri0 eth0") {
		t.Fatalf("unexpected format:\n%s", s)
	}
}

func TestParseFaultDirectives(t *testing.T) {
	src := `
network sci0 sci
network myri0 myrinet
node a0 sci0
node gw sci0 myri0
node b0 myri0
fault seed 42
fault drop * 0.05
fault corrupt myri0 0.01
fault flap myri0 10ms 5ms
fault stall gw 1ms 2ms 100us
fault crash gw 20ms 30ms
fault crash b0 50ms
`
	tp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := tp.Faults
	if p == nil {
		t.Fatal("fault directives produced no plan")
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	if len(p.Rules) != 6 {
		t.Fatalf("parsed %d rules, want 6", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != fault.Drop || r.Net != "*" || r.Prob != 0.05 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = p.Rules[3]
	if r.Kind != fault.Stall || r.Node != "gw" ||
		r.At != vtime.Time(vtime.Millisecond) || r.For != 2*vtime.Millisecond ||
		r.Delay != 100*vtime.Microsecond {
		t.Errorf("stall rule = %+v", r)
	}
	r = p.Rules[5]
	if r.Kind != fault.Crash || r.Node != "b0" || r.For != 0 {
		t.Errorf("open-ended crash rule = %+v", r)
	}
	// The schedule survives a network restriction.
	sub, err := tp.Restrict("sci0", "myri0")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Faults != p {
		t.Error("Restrict dropped the fault plan")
	}
}

func TestParseFaultErrors(t *testing.T) {
	base := "network n sci\nnode a n\nnode b n\n"
	for name, line := range map[string]string{
		"unknown subdirective": "fault explode a",
		"bad seed":             "fault seed many",
		"bad probability":      "fault drop * high",
		"probability range":    "fault drop * 1.5",
		"unknown net":          "fault flap nowhere 1ms 1ms",
		"unknown node":         "fault crash nobody 1ms",
		"bad duration":         "fault flap n soon 1ms",
		"missing operand":      "fault crash",
	} {
		if _, err := Parse(base + line + "\n"); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}
