// Package trace records timestamped spans from the simulation — the
// reproduction's analogue of the paper's rdtsc instrumentation of the
// gateway's low-level code (§3.4.1). The gateway pipeline emits one span per
// receive step, send step and buffer switch; the analysis helpers rebuild
// the Figure 5 / Figure 8 timelines and the pipeline-period accounting of
// §3.3.1 from them.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"madgo/internal/vtime"
)

// Span is one recorded interval.
type Span struct {
	Actor string // e.g. "gw:recv:sci0", "gw:send:myri0"
	Op    string // "recv", "send", "swap", "header", ...
	Bytes int
	T0    vtime.Time
	T1    vtime.Time
}

// Duration returns the span length.
func (s Span) Duration() vtime.Duration { return s.T1.Sub(s.T0) }

func (s Span) String() string {
	return fmt.Sprintf("%-18s %-6s %8dB  %12v .. %-12v (%v)", s.Actor, s.Op, s.Bytes, s.T0, s.T1, s.Duration())
}

// Tracer collects spans. A nil *Tracer is valid and records nothing, so
// instrumented code needs no conditionals. All methods are safe for
// concurrent use: the simulation is single-threaded, but gateway daemons and
// tests may record from separate goroutines.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Record adds a completed span.
func (t *Tracer) Record(actor, op string, bytes int, t0, t1 vtime.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Actor: actor, Op: op, Bytes: bytes, T0: t0, T1: t1})
	t.mu.Unlock()
}

// Spans returns every recorded span in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// ByActor returns the spans of one actor, in time order.
func (t *Tracer) ByActor(actor string) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Actor == actor {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T0 < out[j].T0 })
	return out
}

// Actors returns the distinct actor names, sorted.
func (t *Tracer) Actors() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range t.Spans() {
		if !seen[s.Actor] {
			seen[s.Actor] = true
			out = append(out, s.Actor)
		}
	}
	sort.Strings(out)
	return out
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// Periods returns the start-to-start intervals between consecutive spans of
// one actor and operation — the pipeline period of §3.3.1 when applied to
// the gateway receive steps.
func (t *Tracer) Periods(actor, op string) []vtime.Duration {
	var starts []vtime.Time
	for _, s := range t.ByActor(actor) {
		if s.Op == op {
			starts = append(starts, s.T0)
		}
	}
	if len(starts) < 2 {
		return nil
	}
	out := make([]vtime.Duration, 0, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		out = append(out, starts[i].Sub(starts[i-1]))
	}
	return out
}

// MeanDuration returns the average length of the actor's spans with the
// given op, and their count.
func (t *Tracer) MeanDuration(actor, op string) (vtime.Duration, int) {
	var sum vtime.Duration
	n := 0
	for _, s := range t.ByActor(actor) {
		if s.Op == op {
			sum += s.Duration()
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / vtime.Duration(n), n
}

// SteadyMean is MeanDuration computed after dropping the first `warmup` and
// last `cooldown` spans — the pipeline's fill and drain phases.
func (t *Tracer) SteadyMean(actor, op string, warmup, cooldown int) (vtime.Duration, int) {
	var spans []Span
	for _, s := range t.ByActor(actor) {
		if s.Op == op {
			spans = append(spans, s)
		}
	}
	if len(spans) <= warmup+cooldown {
		return 0, 0
	}
	spans = spans[warmup : len(spans)-cooldown]
	var sum vtime.Duration
	for _, s := range spans {
		sum += s.Duration()
	}
	return sum / vtime.Duration(len(spans)), len(spans)
}

// opMark maps an operation name to its one-character timeline mark. Well
// known ops keep their historical marks; anything else falls back to the
// op's first letter.
func opMark(op string) byte {
	switch op {
	case "recv":
		return 'r'
	case "send":
		return 's'
	case "swap":
		return 'x'
	case "header":
		return 'h'
	case "rexmit":
		return 'R'
	case "failover":
		return 'F'
	case "resend":
		return 'M'
	case "crash":
		return 'C'
	case "flap":
		return '~'
	case "drop":
		return 'd'
	case "corrupt", "corrupt-drop":
		return 'c'
	case "e2e":
		return 'e'
	case "dup":
		return 'D'
	}
	if len(op) > 0 {
		return op[0]
	}
	return '?'
}

// Timeline renders an ASCII Gantt chart of all actors between t0 and t1,
// with the given number of character columns — the textual Figure 5 /
// Figure 8. Each actor gets a lane; busy intervals are drawn with the op's
// mark (see opMark). A legend derived from the ops actually present in the
// window is printed under the chart.
func (t *Tracer) Timeline(t0, t1 vtime.Time, cols int) string {
	if t == nil || cols <= 0 || t1 <= t0 {
		return ""
	}
	actors := t.Actors()
	if len(actors) == 0 {
		return ""
	}
	width := 0
	for _, a := range actors {
		if len(a) > width {
			width = len(a)
		}
	}
	total := t1.Sub(t0)
	rendered := make(map[string]byte)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%*s  |%v .. %v, one column = %v|\n", width, "", t0, t1, total/vtime.Duration(cols))
	for _, a := range actors {
		lane := make([]byte, cols)
		for i := range lane {
			lane[i] = '.'
		}
		for _, s := range t.ByActor(a) {
			if s.T1 <= t0 || s.T0 >= t1 {
				continue
			}
			mark := opMark(s.Op)
			rendered[s.Op] = mark
			c0 := int(int64(s.T0-t0) * int64(cols) / int64(total))
			c1 := int(int64(s.T1-t0) * int64(cols) / int64(total))
			if c0 < 0 {
				c0 = 0
			}
			if c1 >= cols {
				c1 = cols - 1
			}
			for c := c0; c <= c1; c++ {
				lane[c] = mark
			}
		}
		fmt.Fprintf(&sb, "%*s  %s\n", width, a, lane)
	}
	if len(rendered) > 0 {
		ops := make([]string, 0, len(rendered))
		for op := range rendered {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		parts := make([]string, len(ops))
		for i, op := range ops {
			parts[i] = fmt.Sprintf("%c = %s", rendered[op], op)
		}
		fmt.Fprintf(&sb, "%*s  legend: %s\n", width, "", strings.Join(parts, ", "))
	}
	return sb.String()
}
