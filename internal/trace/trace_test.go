package trace

import (
	"strings"
	"testing"

	"madgo/internal/vtime"
)

func us(n int64) vtime.Time { return vtime.Time(n * int64(vtime.Microsecond)) }

func sample() *Tracer {
	tr := New()
	tr.Record("gw:recv:sci0", "recv", 8192, us(0), us(190))
	tr.Record("gw:recv:sci0", "swap", 0, us(190), us(230))
	tr.Record("gw:send:myri0", "send", 8192, us(230), us(410))
	tr.Record("gw:recv:sci0", "recv", 8192, us(230), us(420))
	tr.Record("gw:recv:sci0", "swap", 0, us(420), us(460))
	tr.Record("gw:send:myri0", "send", 8192, us(460), us(640))
	return tr
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("a", "recv", 1, 0, 1)
	if tr.Spans() != nil || tr.Actors() != nil || tr.ByActor("a") != nil {
		t.Error("nil tracer returned data")
	}
	if tl := tr.Timeline(0, us(10), 10); tl != "" {
		t.Error("nil tracer rendered a timeline")
	}
	tr.Reset()
}

func TestActorsAndByActor(t *testing.T) {
	tr := sample()
	actors := tr.Actors()
	if len(actors) != 2 || actors[0] != "gw:recv:sci0" || actors[1] != "gw:send:myri0" {
		t.Fatalf("actors = %v", actors)
	}
	recvs := tr.ByActor("gw:recv:sci0")
	if len(recvs) != 4 {
		t.Fatalf("recv spans = %d", len(recvs))
	}
	for i := 1; i < len(recvs); i++ {
		if recvs[i].T0 < recvs[i-1].T0 {
			t.Fatal("ByActor not time-ordered")
		}
	}
}

func TestPeriods(t *testing.T) {
	tr := sample()
	periods := tr.Periods("gw:recv:sci0", "recv")
	if len(periods) != 1 || periods[0] != 230*vtime.Microsecond {
		t.Fatalf("periods = %v", periods)
	}
	if p := tr.Periods("gw:recv:sci0", "nope"); p != nil {
		t.Fatalf("periods for unknown op = %v", p)
	}
}

func TestMeanDuration(t *testing.T) {
	tr := sample()
	mean, n := tr.MeanDuration("gw:send:myri0", "send")
	if n != 2 || mean != 180*vtime.Microsecond {
		t.Fatalf("mean = %v over %d", mean, n)
	}
	if _, n := tr.MeanDuration("x", "y"); n != 0 {
		t.Fatal("unknown actor produced samples")
	}
}

func TestSteadyMean(t *testing.T) {
	tr := New()
	// First and last spans are ramp artifacts.
	tr.Record("a", "recv", 1, us(0), us(1000))
	for i := int64(1); i <= 5; i++ {
		tr.Record("a", "recv", 1, us(i*1000), us(i*1000+100))
	}
	tr.Record("a", "recv", 1, us(7000), us(9000))
	mean, n := tr.SteadyMean("a", "recv", 1, 1)
	if n != 5 || mean != 100*vtime.Microsecond {
		t.Fatalf("steady mean = %v over %d", mean, n)
	}
	if _, n := tr.SteadyMean("a", "recv", 4, 4); n != 0 {
		t.Fatal("over-trimmed window returned samples")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := sample()
	tl := tr.Timeline(0, us(640), 64)
	if !strings.Contains(tl, "gw:recv:sci0") || !strings.Contains(tl, "gw:send:myri0") {
		t.Fatalf("timeline missing lanes:\n%s", tl)
	}
	if !strings.Contains(tl, "r") || !strings.Contains(tl, "s") || !strings.Contains(tl, "x") {
		t.Fatalf("timeline missing op marks:\n%s", tl)
	}
	// Degenerate windows are rejected, not crashed on.
	if tr.Timeline(us(10), us(10), 64) != "" || tr.Timeline(0, us(10), 0) != "" {
		t.Fatal("degenerate timeline not empty")
	}
}

func TestReset(t *testing.T) {
	tr := sample()
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("reset did not clear spans")
	}
}

func TestSpanStringAndDuration(t *testing.T) {
	s := Span{Actor: "a", Op: "recv", Bytes: 42, T0: us(1), T1: us(3)}
	if s.Duration() != 2*vtime.Microsecond {
		t.Fatal("duration wrong")
	}
	if str := s.String(); !strings.Contains(str, "recv") || !strings.Contains(str, "42") {
		t.Fatalf("String() = %q", str)
	}
}
