package trace

import (
	"strings"
	"testing"

	"madgo/internal/vtime"
)

func us(n int64) vtime.Time { return vtime.Time(n * int64(vtime.Microsecond)) }

func sample() *Tracer {
	tr := New()
	tr.Record("gw:recv:sci0", "recv", 8192, us(0), us(190))
	tr.Record("gw:recv:sci0", "swap", 0, us(190), us(230))
	tr.Record("gw:send:myri0", "send", 8192, us(230), us(410))
	tr.Record("gw:recv:sci0", "recv", 8192, us(230), us(420))
	tr.Record("gw:recv:sci0", "swap", 0, us(420), us(460))
	tr.Record("gw:send:myri0", "send", 8192, us(460), us(640))
	return tr
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("a", "recv", 1, 0, 1)
	if tr.Spans() != nil || tr.Actors() != nil || tr.ByActor("a") != nil {
		t.Error("nil tracer returned data")
	}
	if tl := tr.Timeline(0, us(10), 10); tl != "" {
		t.Error("nil tracer rendered a timeline")
	}
	tr.Reset()
}

func TestActorsAndByActor(t *testing.T) {
	tr := sample()
	actors := tr.Actors()
	if len(actors) != 2 || actors[0] != "gw:recv:sci0" || actors[1] != "gw:send:myri0" {
		t.Fatalf("actors = %v", actors)
	}
	recvs := tr.ByActor("gw:recv:sci0")
	if len(recvs) != 4 {
		t.Fatalf("recv spans = %d", len(recvs))
	}
	for i := 1; i < len(recvs); i++ {
		if recvs[i].T0 < recvs[i-1].T0 {
			t.Fatal("ByActor not time-ordered")
		}
	}
}

func TestPeriods(t *testing.T) {
	tr := sample()
	periods := tr.Periods("gw:recv:sci0", "recv")
	if len(periods) != 1 || periods[0] != 230*vtime.Microsecond {
		t.Fatalf("periods = %v", periods)
	}
	if p := tr.Periods("gw:recv:sci0", "nope"); p != nil {
		t.Fatalf("periods for unknown op = %v", p)
	}
}

func TestMeanDuration(t *testing.T) {
	tr := sample()
	mean, n := tr.MeanDuration("gw:send:myri0", "send")
	if n != 2 || mean != 180*vtime.Microsecond {
		t.Fatalf("mean = %v over %d", mean, n)
	}
	if _, n := tr.MeanDuration("x", "y"); n != 0 {
		t.Fatal("unknown actor produced samples")
	}
}

func TestSteadyMean(t *testing.T) {
	tr := New()
	// First and last spans are ramp artifacts.
	tr.Record("a", "recv", 1, us(0), us(1000))
	for i := int64(1); i <= 5; i++ {
		tr.Record("a", "recv", 1, us(i*1000), us(i*1000+100))
	}
	tr.Record("a", "recv", 1, us(7000), us(9000))
	mean, n := tr.SteadyMean("a", "recv", 1, 1)
	if n != 5 || mean != 100*vtime.Microsecond {
		t.Fatalf("steady mean = %v over %d", mean, n)
	}
	if _, n := tr.SteadyMean("a", "recv", 4, 4); n != 0 {
		t.Fatal("over-trimmed window returned samples")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := sample()
	tl := tr.Timeline(0, us(640), 64)
	if !strings.Contains(tl, "gw:recv:sci0") || !strings.Contains(tl, "gw:send:myri0") {
		t.Fatalf("timeline missing lanes:\n%s", tl)
	}
	if !strings.Contains(tl, "r") || !strings.Contains(tl, "s") || !strings.Contains(tl, "x") {
		t.Fatalf("timeline missing op marks:\n%s", tl)
	}
	// Degenerate windows are rejected, not crashed on.
	if tr.Timeline(us(10), us(10), 64) != "" || tr.Timeline(0, us(10), 0) != "" {
		t.Fatal("degenerate timeline not empty")
	}
}

func TestReset(t *testing.T) {
	tr := sample()
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("reset did not clear spans")
	}
}

func TestSpanStringAndDuration(t *testing.T) {
	s := Span{Actor: "a", Op: "recv", Bytes: 42, T0: us(1), T1: us(3)}
	if s.Duration() != 2*vtime.Microsecond {
		t.Fatal("duration wrong")
	}
	if str := s.String(); !strings.Contains(str, "recv") || !strings.Contains(str, "42") {
		t.Fatalf("String() = %q", str)
	}
}

func TestTimelineLegend(t *testing.T) {
	tr := sample()
	tl := tr.Timeline(0, us(640), 64)
	if !strings.Contains(tl, "legend:") {
		t.Fatalf("timeline has no legend:\n%s", tl)
	}
	for _, want := range []string{"r = recv", "s = send", "x = swap"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("legend missing %q:\n%s", want, tl)
		}
	}
	// Ops outside the window must not appear in the legend.
	tr.Record("gw:recv:sci0", "rexmit", 0, us(900), us(950))
	if tl := tr.Timeline(0, us(640), 64); strings.Contains(tl, "R = rexmit") {
		t.Fatalf("legend lists op outside window:\n%s", tl)
	}
	if tl := tr.Timeline(0, us(1000), 64); !strings.Contains(tl, "R = rexmit") {
		t.Fatalf("legend misses op inside window:\n%s", tl)
	}
	// Novel ops get their first letter, not '?'.
	tr2 := New()
	tr2.Record("a", "poll", 0, us(0), us(10))
	if tl := tr2.Timeline(0, us(10), 10); !strings.Contains(tl, "p = poll") {
		t.Fatalf("derived legend missing novel op:\n%s", tl)
	}
}

func TestOpMarkFallbacks(t *testing.T) {
	if opMark("recv") != 'r' || opMark("swap") != 'x' || opMark("corrupt-drop") != 'c' {
		t.Fatal("known op marks changed")
	}
	if opMark("zing") != 'z' {
		t.Fatal("unknown op should use its first letter")
	}
	if opMark("") != '?' {
		t.Fatal("empty op should render '?'")
	}
}

func TestTimelineBoundarySpans(t *testing.T) {
	tr := New()
	tr.Record("a", "recv", 1, us(0), us(10))    // starts exactly at t0
	tr.Record("a", "send", 1, us(90), us(100))  // ends exactly at t1
	tr.Record("a", "swap", 1, us(100), us(110)) // starts exactly at t1: excluded
	tr.Record("a", "drop", 1, us(-10), us(0))   // ends exactly at t0: excluded
	tl := tr.Timeline(0, us(100), 10)
	if !strings.Contains(tl, "r") || !strings.Contains(tl, "s") {
		t.Fatalf("boundary spans not rendered:\n%s", tl)
	}
	if strings.Contains(tl, "x = swap") || strings.Contains(tl, "d = drop") {
		t.Fatalf("spans outside [t0,t1) rendered:\n%s", tl)
	}
	// A span wider than the window is clipped, not crashed on.
	tr.Record("a", "recv", 1, us(-50), us(500))
	if tl := tr.Timeline(0, us(100), 10); tl == "" {
		t.Fatal("clipped span produced empty timeline")
	}
}

func TestSteadyMeanDegenerate(t *testing.T) {
	tr := New()
	for i := int64(0); i < 4; i++ {
		tr.Record("a", "recv", 1, us(i*100), us(i*100+10))
	}
	// warmup+cooldown == len(spans): nothing left.
	if mean, n := tr.SteadyMean("a", "recv", 2, 2); n != 0 || mean != 0 {
		t.Fatalf("exact trim returned %v over %d", mean, n)
	}
	// warmup+cooldown > len(spans): negative slice bounds must not panic.
	if mean, n := tr.SteadyMean("a", "recv", 10, 10); n != 0 || mean != 0 {
		t.Fatalf("over-trim returned %v over %d", mean, n)
	}
	var nilTr *Tracer
	if mean, n := nilTr.SteadyMean("a", "recv", 0, 0); n != 0 || mean != 0 {
		t.Fatal("nil tracer SteadyMean returned samples")
	}
}

func TestNilTracerAnalysisMethods(t *testing.T) {
	var tr *Tracer
	if p := tr.Periods("a", "recv"); p != nil {
		t.Fatal("nil tracer Periods returned data")
	}
	if mean, n := tr.MeanDuration("a", "recv"); n != 0 || mean != 0 {
		t.Fatal("nil tracer MeanDuration returned samples")
	}
}

func TestConcurrentRecord(t *testing.T) {
	// Regression test for the data race between gateway daemons recording
	// from separate goroutines; run under -race.
	tr := New()
	const goroutines, each = 8, 200
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < each; i++ {
				tr.Record("a", "recv", g, us(int64(i)), us(int64(i)+1))
				_ = tr.Spans()
				_ = tr.Actors()
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if n := len(tr.Spans()); n != goroutines*each {
		t.Fatalf("recorded %d spans, want %d", n, goroutines*each)
	}
}
