package vtime

import (
	"strings"
	"testing"
)

func TestDaemonsDoNotDeadlockTheRun(t *testing.T) {
	s := New()
	served := 0
	var w *Waker
	s.SpawnDaemon("server", func(p *Proc) {
		for {
			w = p.Blocker("await request")
			w.Wait()
			served++
		}
	})
	s.Spawn("client", func(p *Proc) {
		p.Sleep(Microsecond) // let the server park
		w.Wake()
		p.Sleep(Microsecond)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run with parked daemon errored: %v", err)
	}
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
}

func TestDeadlockStillReportedWithDaemonsPresent(t *testing.T) {
	s := New()
	s.SpawnDaemon("daemon", func(p *Proc) {
		p.Blocker("idle").Wait()
	})
	s.Spawn("stuck", func(p *Proc) {
		p.Blocker("forgotten").Wait()
	})
	err := s.Run()
	de, ok := err.(DeadlockError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if len(de.Stuck) != 1 || !strings.Contains(de.Stuck[0], "stuck") {
		t.Fatalf("stuck = %v (daemons must not be listed)", de.Stuck)
	}
}

func TestOnIdleHookRunsOnDeadlock(t *testing.T) {
	s := New()
	ran := false
	s.OnIdle(func() { ran = true })
	s.Spawn("stuck", func(p *Proc) { p.Blocker("x").Wait() })
	if _, ok := s.Run().(DeadlockError); !ok {
		t.Fatal("expected deadlock")
	}
	if !ran {
		t.Fatal("OnIdle hook not invoked")
	}
}

func TestOnIdleHookNotRunOnCleanExit(t *testing.T) {
	s := New()
	ran := false
	s.OnIdle(func() { ran = true })
	s.Spawn("fine", func(p *Proc) { p.Sleep(Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("OnIdle hook ran without a deadlock")
	}
}

func TestBlockingCallFromWrongGoroutinePanics(t *testing.T) {
	s := New()
	var handle *Proc
	s.Spawn("victim", func(p *Proc) {
		handle = p
		p.Sleep(Microsecond)
	})
	s.Spawn("offender", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: Sleep on a process that is not running")
			}
		}()
		handle.Sleep(Microsecond) // wrong: handle belongs to victim
	})
	_ = s.Run()
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().After(-1, func() {})
}

func TestReentrantRunPanics(t *testing.T) {
	s := New()
	s.Spawn("reenter", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on reentrant Run")
			}
		}()
		_ = s.Run()
	})
	_ = s.Run()
}

func TestProcAccessors(t *testing.T) {
	s := New()
	s.Spawn("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Sim() != s {
			t.Error("Sim accessor wrong")
		}
		if p.Done() || p.Parked() {
			t.Error("running process misreports state")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
