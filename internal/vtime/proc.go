package vtime

import "fmt"

type procState int

const (
	stateNew procState = iota
	stateScheduled
	stateRunning
	stateParked
	stateDone
)

// proc is the internal process record. The public handle is Proc.
type proc struct {
	sim     *Sim
	id      int
	name    string
	resume  chan struct{}
	state   procState
	gen     uint64 // bumped on every park; stale wake events are ignored
	waiting string // human-readable blocking reason, for deadlock reports
	daemon  bool   // daemons may remain blocked when the simulation ends
	joiners []*proc
}

// Proc is the handle a simulated process uses to interact with virtual
// time: sleeping, parking, and spawning further processes. Every blocking
// operation in the library takes the caller's Proc.
//
// A Proc must only be used from its own goroutine while that goroutine holds
// control (which is always the case in straight-line process code).
type Proc struct {
	p *proc
}

// Spawn creates a process executing fn and schedules it to start at the
// current time. It may be called before Run or from inside a running
// process.
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	s.nextID++
	p := &proc{
		sim:    s,
		id:     s.nextID,
		name:   name,
		resume: make(chan struct{}),
		state:  stateScheduled,
	}
	s.live[p.id] = p
	handle := &Proc{p: p}
	go func() {
		<-p.resume
		var panicked interface{}
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = r
				}
			}()
			fn(handle)
		}()
		s.handoff <- yield{p: p, done: true, panicked: panicked}
	}()
	s.schedule(s.now, p, p.gen, nil)
	return handle
}

// SpawnDaemon creates a process like Spawn, but marks it as a daemon:
// service loops (channel pollers, gateway forwarding threads) that block
// forever by design. A simulation whose only remaining processes are
// blocked daemons terminates cleanly instead of reporting a deadlock.
func (s *Sim) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	p := s.Spawn(name, fn)
	p.p.daemon = true
	return p
}

// Name returns the process name given at Spawn.
func (pr *Proc) Name() string { return pr.p.name }

// Sim returns the simulation this process belongs to.
func (pr *Proc) Sim() *Sim { return pr.p.sim }

// Now returns the current virtual time.
func (pr *Proc) Now() Time { return pr.p.sim.now }

// checkCurrent panics unless the process is the one the scheduler is
// currently running; calling blocking operations from the wrong goroutine is
// always a programming error and would corrupt the simulation.
func (pr *Proc) checkCurrent(op string) {
	if pr.p.sim.current != pr.p {
		panic(fmt.Sprintf("vtime: %s called on process %q which is not running", op, pr.p.name))
	}
}

// park gives up control without a scheduled wake; some other process or
// callback must call unpark. The reason appears in deadlock reports.
func (pr *Proc) park(reason string) {
	pr.checkCurrent("park")
	p := pr.p
	p.state = stateParked
	p.gen++
	p.waiting = reason
	p.sim.handoff <- yield{p: p}
	<-p.resume
	p.waiting = ""
}

// unpark schedules a parked process to resume at the current time. It is
// exported within the package for the vsync primitives via Waker.
func (pr *Proc) unpark() {
	pr.p.sim.ready(pr.p)
}

// Parked reports whether the process is currently parked (blocked without a
// scheduled wake).
func (pr *Proc) Parked() bool { return pr.p.state == stateParked }

// Done reports whether the process function has returned.
func (pr *Proc) Done() bool { return pr.p.state == stateDone }

// Sleep suspends the process for d of virtual time. d must be nonnegative;
// Sleep(0) yields to other processes scheduled at the same instant.
func (pr *Proc) Sleep(d Duration) {
	pr.checkCurrent("Sleep")
	if d < 0 {
		panic("vtime: Sleep with negative duration")
	}
	p := pr.p
	p.state = stateParked
	p.gen++
	p.waiting = "sleep"
	p.sim.schedule(p.sim.now.Add(d), p, p.gen, nil)
	p.state = stateScheduled
	p.sim.handoff <- yield{p: p}
	<-p.resume
	p.waiting = ""
}

// Yield lets every other process scheduled at the current instant run before
// this one continues.
func (pr *Proc) Yield() { pr.Sleep(0) }

// Block parks the process until another process or callback wakes it through
// the returned Waker. The reason string shows up in deadlock reports.
//
// Typical use:
//
//	w := p.Blocker("await reply")
//	registerWaiter(w)
//	w.Wait()
func (pr *Proc) Blocker(reason string) *Waker {
	pr.checkCurrent("Blocker")
	return &Waker{pr: pr, reason: reason}
}

// Waker is a one-shot rendezvous between a process about to block and the
// party that will wake it. Wake may be called before or after Wait; the
// pairing is race-free because the simulation is single-threaded.
type Waker struct {
	pr     *Proc
	reason string
	woken  bool
	parked bool
}

// Wait parks the owning process until Wake has been called. If Wake already
// happened, Wait returns immediately (still yielding no time).
func (w *Waker) Wait() {
	if w.woken {
		return
	}
	w.parked = true
	w.pr.park(w.reason)
	w.parked = false
}

// Proc returns the process that owns this waker.
func (w *Waker) Proc() *Proc { return w.pr }

// Wake releases the waiter. Waking twice panics: Wakers are strictly
// one-shot so protocol errors surface immediately.
func (w *Waker) Wake() {
	if w.woken {
		panic("vtime: Waker woken twice")
	}
	w.woken = true
	if w.parked {
		w.pr.unpark()
	}
}

// Join blocks until other has finished. Joining a finished process returns
// immediately.
func (pr *Proc) Join(other *Proc) {
	pr.checkCurrent("Join")
	if other.p.state == stateDone {
		return
	}
	other.p.joiners = append(other.p.joiners, pr.p)
	pr.park("join " + other.p.name)
}
