package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled occurrence: either resuming a parked process or
// running a lightweight callback in scheduler context.
type event struct {
	at  Time
	seq uint64 // FIFO tiebreaker for simultaneous events
	p   *proc  // process to resume, nil for callbacks
	gen uint64 // park generation guard: stale wakes are dropped
	fn  func() // callback, nil for process resumes
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// yield is the message a process goroutine sends back to the scheduler when
// it gives up control.
type yield struct {
	p        *proc
	done     bool
	panicked interface{}
}

// Sim is a discrete-event simulation. The zero value is not usable; create
// simulations with New.
//
// All processes of a Sim run under a single scheduler, one at a time, so no
// locking is needed anywhere in simulation code.
type Sim struct {
	now     Time
	seq     uint64
	events  eventHeap
	handoff chan yield
	live    map[int]*proc
	nextID  int
	running bool
	current *proc
	idle    []func() // hooks run when the event queue drains (diagnostics)
}

// New creates an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{
		handoff: make(chan yield),
		live:    make(map[int]*proc),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// schedule enqueues an event at time at (>= now).
func (s *Sim) schedule(at Time, p *proc, gen uint64, fn func()) *event {
	if at < s.now {
		panic(fmt.Sprintf("vtime: scheduling into the past (%v < %v)", at, s.now))
	}
	s.seq++
	e := &event{at: at, seq: s.seq, p: p, gen: gen, fn: fn}
	heap.Push(&s.events, e)
	return e
}

// At schedules fn to run in scheduler context at absolute time at. The
// callback must not block; it is intended for bookkeeping such as fluid-flow
// completions. Callbacks may schedule further events and wake processes.
func (s *Sim) At(at Time, fn func()) {
	s.schedule(at, nil, 0, fn)
}

// After schedules fn to run d from now. See At.
func (s *Sim) After(d Duration, fn func()) {
	if d < 0 {
		panic("vtime: After with negative duration")
	}
	s.At(s.now.Add(d), fn)
}

// OnIdle registers a diagnostic hook invoked once when the event queue
// drains while processes are still alive (i.e. on deadlock detection),
// before Run returns the DeadlockError.
func (s *Sim) OnIdle(fn func()) { s.idle = append(s.idle, fn) }

// Abort is a panic value that ends the simulation cleanly: a process that
// panics with an Abort makes Run return Err instead of re-raising the panic
// in the caller. The reliability layer uses it to surface typed delivery
// errors (a destination that stayed unreachable through every retry) without
// either crashing the host program or leaving the simulation deadlocked.
type Abort struct{ Err error }

// DeadlockError reports that the event queue drained while processes were
// still blocked. It lists the stuck processes and what they were last
// waiting on.
type DeadlockError struct {
	Stuck []string
}

func (e DeadlockError) Error() string {
	return "vtime: deadlock, blocked processes: " + strings.Join(e.Stuck, ", ")
}

// Run executes the simulation until no events remain. It returns nil when
// every process has finished, and a DeadlockError when processes remain
// blocked with nothing left to wake them. A panic inside a process is
// re-raised in the caller, annotated with the process name — except an
// Abort, whose error is returned instead.
func (s *Sim) Run() error {
	return s.run(-1)
}

// RunUntil executes the simulation, stopping before the first event
// scheduled after the deadline. Remaining events stay queued; Run or
// RunUntil may be called again. The clock is left at the time of the last
// executed event (it does not jump to the deadline).
func (s *Sim) RunUntil(deadline Time) error {
	return s.run(deadline)
}

func (s *Sim) run(deadline Time) error {
	if s.running {
		panic("vtime: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()

	for s.events.Len() > 0 {
		if deadline >= 0 && s.events[0].at > deadline {
			return nil
		}
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		if e.fn != nil {
			e.fn()
			continue
		}
		p := e.p
		if p.state == stateDone || p.gen != e.gen {
			continue // stale wake
		}
		if err := s.resume(p); err != nil {
			return err
		}
	}
	var stuck []string
	for _, p := range s.live {
		if !p.daemon {
			stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.waiting))
		}
	}
	if len(stuck) > 0 {
		for _, fn := range s.idle {
			fn()
		}
		sort.Strings(stuck)
		return DeadlockError{Stuck: stuck}
	}
	return nil
}

// resume transfers control to p and waits for it to park or finish. A
// non-nil error is an Abort raised by the process; it stops the run.
func (s *Sim) resume(p *proc) error {
	p.state = stateRunning
	s.current = p
	p.resume <- struct{}{}
	y := <-s.handoff
	s.current = nil
	if y.panicked != nil {
		if ab, ok := y.panicked.(Abort); ok {
			y.p.state = stateDone
			delete(s.live, y.p.id)
			return ab.Err
		}
		panic(fmt.Sprintf("vtime: process %q panicked: %v", y.p.name, y.panicked))
	}
	if y.done {
		y.p.state = stateDone
		delete(s.live, y.p.id)
		for _, j := range y.p.joiners {
			s.ready(j)
		}
		y.p.joiners = nil
	}
	return nil
}

// ready wakes a parked process at the current time (FIFO among same-time
// wakes).
func (s *Sim) ready(p *proc) {
	if p.state != stateParked {
		panic(fmt.Sprintf("vtime: waking process %q which is not parked", p.name))
	}
	p.state = stateScheduled
	s.schedule(s.now, p, p.gen, nil)
}

// Processes returns the number of live (not yet finished) processes.
func (s *Sim) Processes() int { return len(s.live) }
