package vtime

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("fresh sim clock = %v, want 0", s.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(7 * Microsecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(12 * Microsecond); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a1,b1,a2" {
		t.Fatalf("order = %s, want a1,b1,a2", got)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	s := New()
	s.Spawn("bad", func(p *Proc) {
		p.Sleep(-1)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from negative sleep")
		}
	}()
	_ = s.Run()
}

func TestSameInstantFIFO(t *testing.T) {
	// Processes woken at the same instant run in scheduling order.
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Microsecond)
			order = append(order, i)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(Duration(1+i) * Microsecond)
					log = append(log, fmt.Sprintf("p%d@%v", i, p.Now()))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a := strings.Join(run(), ";")
	for i := 0; i < 5; i++ {
		if b := strings.Join(run(), ";"); a != b {
			t.Fatalf("nondeterministic run:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New()
	var childTime Time
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		child := s.Spawn("child", func(c *Proc) {
			c.Sleep(Microsecond)
			childTime = c.Now()
		})
		p.Join(child)
		if p.Now() != Time(4*Microsecond) {
			t.Errorf("parent resumed at %v, want 4µs", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != Time(4*Microsecond) {
		t.Fatalf("child finished at %v, want 4µs", childTime)
	}
}

func TestJoinFinishedProcess(t *testing.T) {
	s := New()
	done := s.Spawn("quick", func(p *Proc) {})
	s.Spawn("joiner", func(p *Proc) {
		p.Sleep(Microsecond)
		if !done.Done() {
			t.Error("quick not done after 1µs")
		}
		p.Join(done) // must not block
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	s.Spawn("stuck", func(p *Proc) {
		w := p.Blocker("never woken")
		w.Wait()
	})
	err := s.Run()
	de, ok := err.(DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Stuck) != 1 || !strings.Contains(de.Stuck[0], "stuck") || !strings.Contains(de.Stuck[0], "never woken") {
		t.Fatalf("stuck = %v", de.Stuck)
	}
}

func TestWakerBeforeWait(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		w := p.Blocker("x")
		w.Wake()
		w.Wait() // must not block
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWakerCrossProcess(t *testing.T) {
	s := New()
	var woken Time
	var w *Waker
	s.Spawn("sleeper", func(p *Proc) {
		w = p.Blocker("cross")
		w.Wait()
		woken = p.Now()
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(9 * Microsecond)
		w.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != Time(9*Microsecond) {
		t.Fatalf("woken at %v, want 9µs", woken)
	}
}

func TestDoubleWakePanics(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		w := p.Blocker("x")
		w.Wake()
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double wake")
			}
		}()
		w.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCallbackEvents(t *testing.T) {
	s := New()
	var at Time
	s.After(4*Microsecond, func() { at = s.Now() })
	s.Spawn("idle", func(p *Proc) { p.Sleep(10 * Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(4*Microsecond) {
		t.Fatalf("callback at %v, want 4µs", at)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := New()
	var ticks int
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Millisecond)
			ticks++
		}
	})
	if err := s.RunUntil(Time(3 * Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d after full run, want 10", ticks)
	}
}

func TestPanicPropagation(t *testing.T) {
	s := New()
	s.Spawn("bomber", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") || !strings.Contains(fmt.Sprint(r), "bomber") {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = s.Run()
}

func TestProcessesCount(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Proc) { p.Sleep(Microsecond) })
	s.Spawn("b", func(p *Proc) { p.Sleep(2 * Microsecond) })
	if s.Processes() != 2 {
		t.Fatalf("live = %d, want 2", s.Processes())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Processes() != 0 {
		t.Fatalf("live = %d after run, want 0", s.Processes())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1µs"},
		{42 * Microsecond, "42µs"},
		{1500 * Microsecond, "1.5ms"},
		{Second, "1s"},
		{-Microsecond, "-1µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationOfBytes(t *testing.T) {
	// 1 MB at 1 MB/s is one second.
	if d := DurationOfBytes(1e6, 1e6); d != Second {
		t.Fatalf("d = %v, want 1s", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rate")
		}
	}()
	DurationOfBytes(1, 0)
}

// Property: for any set of sleep durations, each process observes the sum of
// its own sleeps as its completion time, regardless of interleaving.
func TestSleepAccumulationProperty(t *testing.T) {
	f := func(durs [][]uint16) bool {
		if len(durs) > 8 {
			durs = durs[:8]
		}
		s := New()
		ends := make([]Time, len(durs))
		sums := make([]Duration, len(durs))
		for i, ds := range durs {
			if len(ds) > 16 {
				ds = ds[:16]
			}
			i, ds := i, ds
			for _, d := range ds {
				sums[i] += Duration(d)
			}
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for _, d := range ds {
					p.Sleep(Duration(d))
				}
				ends[i] = p.Now()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := range durs {
			if ends[i] != Time(sums[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSinceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Since(Time(1), Time(2))
}
