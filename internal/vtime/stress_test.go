package vtime

import (
	"testing"
)

// TestThousandsOfProcesses checks the kernel scales to the process counts a
// big topology implies (pollers, gateway threads, app processes) without
// ordering anomalies.
func TestThousandsOfProcesses(t *testing.T) {
	s := New()
	const n = 3000
	finished := 0
	var last Time
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(Duration(i%97+1) * Microsecond)
			p.Sleep(Duration(i%13+1) * Microsecond)
			finished++
			if p.Now() < last-110*Time(Microsecond) {
				t.Error("gross ordering anomaly")
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d", finished)
	}
	if last != Time(110*Microsecond) {
		t.Fatalf("last completion at %v, want 110µs", last)
	}
}

// TestDeepSpawnChains: each process spawns the next; depth must not be
// limited by the kernel.
func TestDeepSpawnChains(t *testing.T) {
	s := New()
	const depth = 500
	reached := 0
	var spawn func(k int) func(*Proc)
	spawn = func(k int) func(*Proc) {
		return func(p *Proc) {
			reached = k
			p.Sleep(Microsecond)
			if k < depth {
				s.Spawn("link", spawn(k+1))
			}
		}
	}
	s.Spawn("link", spawn(1))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reached != depth {
		t.Fatalf("chain reached %d, want %d", reached, depth)
	}
	if got := Duration(s.Now()); got != depth*Microsecond {
		t.Fatalf("clock = %v", got)
	}
}

// TestManyCallbacksInterleaveWithProcesses mixes thousands of scheduler
// callbacks with process wakeups at identical timestamps.
func TestManyCallbacksInterleaveWithProcesses(t *testing.T) {
	s := New()
	events := 0
	for i := 0; i < 1000; i++ {
		at := Time((i % 50) * int(Microsecond))
		s.At(at, func() { events++ })
	}
	wakes := 0
	for i := 0; i < 100; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			for k := 0; k < 5; k++ {
				p.Sleep(Duration(i%50) * Microsecond)
				wakes++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if events != 1000 || wakes != 500 {
		t.Fatalf("events=%d wakes=%d", events, wakes)
	}
}
