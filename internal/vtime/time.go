// Package vtime implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Simulated threads ("processes") are ordinary goroutines, but the scheduler
// runs exactly one of them at a time and hands control back and forth
// explicitly, so a simulation is deterministic and free of data races by
// construction. Time is virtual: it advances only when every runnable
// process has blocked and the scheduler pops the next event.
//
// The kernel is the substrate for the Madeleine reproduction: communication
// library threads (polling loops, gateway forwarding pipelines, application
// code) are vtime processes, and hardware models charge transfer durations
// to the virtual clock.
package vtime

import "fmt"

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is a distinct type so real and virtual time cannot be
// mixed accidentally.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit, e.g. "42µs" or
// "1.536ms".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return trimUnit(float64(d)/float64(Microsecond), "µs")
	case d < Second:
		return trimUnit(float64(d)/float64(Millisecond), "ms")
	default:
		return trimUnit(float64(d)/float64(Second), "s")
	}
}

// String formats the absolute time like a duration since t=0.
func (t Time) String() string { return Duration(t).String() }

// Since returns the nonnegative span between two times; it panics when the
// clock would run backwards, which always indicates a kernel bug.
func Since(later, earlier Time) Duration {
	if later < earlier {
		panic(fmt.Sprintf("vtime: negative span %v .. %v", earlier, later))
	}
	return later.Sub(earlier)
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// DurationOfBytes returns the time needed to move n bytes at rate bytes/s.
// A nonpositive rate panics: callers must never divide by an idle flow.
func DurationOfBytes(n int64, rate float64) Duration {
	if rate <= 0 {
		panic("vtime: DurationOfBytes with nonpositive rate")
	}
	return Duration(float64(n) / rate * float64(Second))
}
