package vsync

import "madgo/internal/vtime"

// Chan is a typed FIFO channel for simulation processes, analogous to a Go
// channel with a fixed capacity. Capacity 0 gives rendezvous semantics: a
// send completes only when a receiver takes the value.
//
// The gateway forwarding engine and the channel polling loops are built on
// Chan: packet mailboxes, free-buffer rings, and request queues.
type Chan[T any] struct {
	name    string
	cap     int
	buf     []T
	senders []chanSender[T]
	recvers []chanRecver[T]
	closed  bool
}

type chanSender[T any] struct {
	w *vtime.Waker
	v T
}

type chanRecver[T any] struct {
	w  *vtime.Waker
	v  *T
	ok *bool
}

// NewChan creates a channel with the given buffer capacity. The name is used
// in panics and deadlock diagnostics.
func NewChan[T any](name string, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("vsync: negative channel capacity")
	}
	return &Chan[T]{name: name, cap: capacity}
}

// Send enqueues v, blocking while the channel is full. Sending on a closed
// channel panics, as with Go channels.
func (c *Chan[T]) Send(p *vtime.Proc, v T) {
	if c.closed {
		panic("vsync: send on closed channel " + c.name)
	}
	// Direct handoff to a waiting receiver.
	if len(c.recvers) > 0 {
		r := c.recvers[0]
		c.recvers = c.recvers[:copy(c.recvers, c.recvers[1:])]
		*r.v = v
		*r.ok = true
		r.w.Wake()
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	w := p.Blocker("send " + c.name)
	c.senders = append(c.senders, chanSender[T]{w: w, v: v})
	w.Wait()
	if c.closed {
		panic("vsync: channel " + c.name + " closed while sending")
	}
}

// TrySend enqueues v without blocking and reports success.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("vsync: send on closed channel " + c.name)
	}
	if len(c.recvers) > 0 {
		r := c.recvers[0]
		c.recvers = c.recvers[:copy(c.recvers, c.recvers[1:])]
		*r.v = v
		*r.ok = true
		r.w.Wake()
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv dequeues a value, blocking while the channel is empty. The second
// result is false when the channel is closed and drained.
func (c *Chan[T]) Recv(p *vtime.Proc) (T, bool) {
	var zero T
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[:copy(c.buf, c.buf[1:])]
		c.admitSender()
		return v, true
	}
	// Rendezvous with a blocked sender (capacity 0, or cap>0 with all
	// senders queued behind a full buffer that was just drained).
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[:copy(c.senders, c.senders[1:])]
		s.w.Wake()
		return s.v, true
	}
	if c.closed {
		return zero, false
	}
	var v T
	var ok bool
	w := p.Blocker("recv " + c.name)
	c.recvers = append(c.recvers, chanRecver[T]{w: w, v: &v, ok: &ok})
	w.Wait()
	return v, ok
}

// TryRecv dequeues without blocking; ok is false when nothing was available
// (which does not distinguish empty from closed — use Closed for that).
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[:copy(c.buf, c.buf[1:])]
		c.admitSender()
		return v, true
	}
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[:copy(c.senders, c.senders[1:])]
		s.w.Wake()
		return s.v, true
	}
	return zero, false
}

// admitSender moves the longest-blocked sender's value into freed buffer
// space.
func (c *Chan[T]) admitSender() {
	if len(c.senders) > 0 && len(c.buf) < c.cap {
		s := c.senders[0]
		c.senders = c.senders[:copy(c.senders, c.senders[1:])]
		c.buf = append(c.buf, s.v)
		s.w.Wake()
	}
}

// Close marks the channel closed. Blocked receivers are released with
// ok=false; blocked senders panic (their values would be lost silently
// otherwise).
func (c *Chan[T]) Close() {
	if c.closed {
		panic("vsync: double close of channel " + c.name)
	}
	c.closed = true
	rs := c.recvers
	c.recvers = nil
	for _, r := range rs {
		*r.ok = false
		r.w.Wake()
	}
	ss := c.senders
	c.senders = nil
	for _, s := range ss {
		s.w.Wake() // sender panics on resume
	}
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Name returns the channel's diagnostic name.
func (c *Chan[T]) Name() string { return c.name }
