package vsync

import (
	"fmt"
	"testing"
	"testing/quick"

	"madgo/internal/vtime"
)

func TestChanBufferedFIFO(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[int]("c", 4)
		s.Spawn("producer", func(p *vtime.Proc) {
			for i := 0; i < 10; i++ {
				ch.Send(p, i)
			}
		})
		s.Spawn("consumer", func(p *vtime.Proc) {
			for i := 0; i < 10; i++ {
				v, ok := ch.Recv(p)
				if !ok || v != i {
					t.Errorf("recv #%d = %d,%v", i, v, ok)
				}
			}
		})
	})
}

func TestChanRendezvous(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[string]("r", 0)
		var sendDone, recvDone vtime.Time
		s.Spawn("sender", func(p *vtime.Proc) {
			ch.Send(p, "x")
			sendDone = p.Now()
		})
		s.Spawn("receiver", func(p *vtime.Proc) {
			p.Sleep(5 * vtime.Microsecond)
			v, ok := ch.Recv(p)
			if !ok || v != "x" {
				t.Errorf("recv = %q,%v", v, ok)
			}
			recvDone = p.Now()
		})
		s.Spawn("check", func(p *vtime.Proc) {
			p.Sleep(vtime.Millisecond)
			if sendDone != vtime.Time(5*vtime.Microsecond) {
				t.Errorf("send completed at %v, want 5µs (rendezvous)", sendDone)
			}
			if recvDone != vtime.Time(5*vtime.Microsecond) {
				t.Errorf("recv completed at %v", recvDone)
			}
		})
	})
}

func TestChanBlocksWhenFull(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[int]("f", 1)
		var secondSendAt vtime.Time
		s.Spawn("sender", func(p *vtime.Proc) {
			ch.Send(p, 1)
			ch.Send(p, 2) // blocks until consumer drains
			secondSendAt = p.Now()
		})
		s.Spawn("consumer", func(p *vtime.Proc) {
			p.Sleep(7 * vtime.Microsecond)
			if v, ok := ch.Recv(p); !ok || v != 1 {
				t.Errorf("recv = %d,%v", v, ok)
			}
			if v, ok := ch.Recv(p); !ok || v != 2 {
				t.Errorf("recv = %d,%v", v, ok)
			}
		})
		s.Spawn("check", func(p *vtime.Proc) {
			p.Sleep(vtime.Millisecond)
			if secondSendAt != vtime.Time(7*vtime.Microsecond) {
				t.Errorf("second send at %v, want 7µs", secondSendAt)
			}
		})
	})
}

func TestChanTryOps(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[int]("t", 1)
		s.Spawn("p", func(p *vtime.Proc) {
			if _, ok := ch.TryRecv(); ok {
				t.Error("TryRecv on empty channel succeeded")
			}
			if !ch.TrySend(1) {
				t.Error("TrySend on empty channel failed")
			}
			if ch.TrySend(2) {
				t.Error("TrySend on full channel succeeded")
			}
			if v, ok := ch.TryRecv(); !ok || v != 1 {
				t.Errorf("TryRecv = %d,%v", v, ok)
			}
			if ch.Len() != 0 {
				t.Errorf("Len = %d", ch.Len())
			}
		})
	})
}

func TestChanCloseReleasesReceivers(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[int]("close", 0)
		s.Spawn("receiver", func(p *vtime.Proc) {
			if _, ok := ch.Recv(p); ok {
				t.Error("recv on closed channel returned ok")
			}
		})
		s.Spawn("closer", func(p *vtime.Proc) {
			p.Sleep(vtime.Microsecond)
			ch.Close()
			if !ch.Closed() {
				t.Error("Closed() = false")
			}
		})
	})
}

func TestChanCloseDrainsBuffer(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[int]("drain", 2)
		s.Spawn("p", func(p *vtime.Proc) {
			ch.Send(p, 1)
			ch.Send(p, 2)
			ch.Close()
			if v, ok := ch.Recv(p); !ok || v != 1 {
				t.Errorf("recv = %d,%v", v, ok)
			}
			if v, ok := ch.Recv(p); !ok || v != 2 {
				t.Errorf("recv = %d,%v", v, ok)
			}
			if _, ok := ch.Recv(p); ok {
				t.Error("recv on drained closed channel returned ok")
			}
		})
	})
}

func TestChanSendOnClosedPanics(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[int]("panics", 1)
		ch.Close()
		s.Spawn("p", func(p *vtime.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			ch.Send(p, 1)
		})
	})
}

func TestChanManyProducersOrderedPerProducer(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		ch := NewChan[[2]int]("m", 3)
		const producers, per = 4, 20
		seen := make(map[int]int)
		for pid := 0; pid < producers; pid++ {
			pid := pid
			s.Spawn(fmt.Sprintf("prod%d", pid), func(p *vtime.Proc) {
				for k := 0; k < per; k++ {
					ch.Send(p, [2]int{pid, k})
					p.Sleep(vtime.Duration(pid+1) * vtime.Microsecond)
				}
			})
		}
		s.Spawn("consumer", func(p *vtime.Proc) {
			for i := 0; i < producers*per; i++ {
				v, ok := ch.Recv(p)
				if !ok {
					t.Fatal("channel closed early")
				}
				if v[1] != seen[v[0]] {
					t.Errorf("producer %d out of order: got %d want %d", v[0], v[1], seen[v[0]])
				}
				seen[v[0]]++
			}
		})
	})
}

// Property: any sequence of sends is received in exactly the same order,
// for any buffer capacity.
func TestChanOrderProperty(t *testing.T) {
	f := func(values []int64, capacity uint8) bool {
		if len(values) > 64 {
			values = values[:64]
		}
		capn := int(capacity % 8)
		s := vtime.New()
		ch := NewChan[int64]("prop", capn)
		var got []int64
		s.Spawn("producer", func(p *vtime.Proc) {
			for _, v := range values {
				ch.Send(p, v)
			}
			ch.Close()
		})
		s.Spawn("consumer", func(p *vtime.Proc) {
			for {
				v, ok := ch.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(values) {
			return false
		}
		for i := range got {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
