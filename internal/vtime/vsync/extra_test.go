package vsync

import (
	"testing"

	"madgo/internal/vtime"
)

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		c := NewCond(&mu)
		s.Spawn("p", func(p *vtime.Proc) {
			c.Signal()
			c.Broadcast()
		})
	})
}

func TestSemAcquireNegativePanics(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		sem := NewSem(1)
		s.Spawn("p", func(p *vtime.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			sem.Acquire(p, -1)
		})
	})
}

func TestSemReleaseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSem(0).Release(-1)
}

func TestSemFIFOBlocksTryAcquireBehindWaiters(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		sem := NewSem(0)
		s.Spawn("waiter", func(p *vtime.Proc) {
			sem.Acquire(p, 1)
		})
		s.Spawn("opportunist", func(p *vtime.Proc) {
			p.Sleep(vtime.Microsecond)
			// A queued waiter exists: TryAcquire must not cut in
			// even after a release.
			sem.Release(1)
			if sem.TryAcquire(1) {
				t.Error("TryAcquire jumped the FIFO queue")
			}
		})
	})
}

func TestChanCloseWithBlockedSenderPanicsSender(t *testing.T) {
	s := vtime.New()
	ch := NewChan[int]("x", 0)
	s.Spawn("sender", func(p *vtime.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic in blocked sender on close")
			}
		}()
		ch.Send(p, 1)
	})
	s.Spawn("closer", func(p *vtime.Proc) {
		p.Sleep(vtime.Microsecond)
		ch.Close()
	})
	_ = s.Run()
}

func TestChanDoubleClosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch := NewChan[int]("x", 1)
	ch.Close()
	ch.Close()
}

func TestChanNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChan[int]("x", -1)
}

func TestChanNameAccessor(t *testing.T) {
	if NewChan[int]("mailbox", 1).Name() != "mailbox" {
		t.Fatal("name accessor wrong")
	}
}

func TestMutexUnlockWhenFreePanics(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		s.Spawn("p", func(p *vtime.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			mu.Unlock(p)
		})
	})
}

func TestWaitGroupReuse(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var wg WaitGroup
		for round := 0; round < 3; round++ {
			round := round
			wg.Add(2)
			for i := 0; i < 2; i++ {
				s.Spawn("w", func(p *vtime.Proc) {
					p.Sleep(vtime.Duration(round+1) * vtime.Microsecond)
					wg.Done()
				})
			}
		}
		s.Spawn("waiter", func(p *vtime.Proc) {
			wg.Wait(p)
			if p.Now() != vtime.Time(3*vtime.Microsecond) {
				t.Errorf("released at %v", p.Now())
			}
		})
	})
}
