// Package vsync provides synchronization primitives for vtime processes:
// mutexes, condition variables, semaphores, typed channels and wait groups.
//
// They mirror the thread primitives the original Madeleine gateway code uses
// (Marcel threads), but block in virtual time. All operations must be called
// from the currently running simulation process, which is passed explicitly;
// misuse panics immediately.
package vsync

import (
	"madgo/internal/vtime"
)

// Mutex is a FIFO mutual-exclusion lock for simulation processes. The zero
// value is an unlocked mutex.
type Mutex struct {
	owner   *vtime.Proc
	waiters []*vtime.Waker
}

// Lock acquires the mutex, blocking p until it is available. The lock is not
// reentrant; relocking by the owner panics (it would self-deadlock anyway,
// so fail fast).
func (m *Mutex) Lock(p *vtime.Proc) {
	if m.owner == p {
		panic("vsync: recursive Mutex.Lock")
	}
	if m.owner == nil {
		m.owner = p
		return
	}
	w := p.Blocker("mutex")
	m.waiters = append(m.waiters, w)
	w.Wait()
	if m.owner != p {
		panic("vsync: mutex handoff corrupted")
	}
}

// TryLock acquires the mutex without blocking and reports whether it
// succeeded.
func (m *Mutex) TryLock(p *vtime.Proc) bool {
	if m.owner == nil {
		m.owner = p
		return true
	}
	return false
}

// Unlock releases the mutex, handing it to the longest-waiting process.
func (m *Mutex) Unlock(p *vtime.Proc) {
	if m.owner != p {
		panic("vsync: Unlock by non-owner")
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	w := m.waiters[0]
	m.waiters = m.waiters[:copy(m.waiters, m.waiters[1:])]
	m.owner = w.Proc()
	w.Wake()
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a condition variable bound to a Mutex, with the usual
// Wait/Signal/Broadcast semantics. Unlike sync.Cond there are no spurious
// wakeups, but callers should still re-check their predicate in a loop: a
// signalled process reacquires the lock after other processes may have run.
type Cond struct {
	L       *Mutex
	waiters []*vtime.Waker
}

// NewCond returns a condition variable using l.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// Wait atomically unlocks the mutex, parks p until Signal or Broadcast, and
// relocks before returning.
func (c *Cond) Wait(p *vtime.Proc) {
	w := p.Blocker("cond wait")
	c.waiters = append(c.waiters, w)
	c.L.Unlock(p)
	w.Wait()
	c.L.Lock(p)
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[:copy(c.waiters, c.waiters[1:])]
	w.Wake()
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.Wake()
	}
}

// Sem is a counting semaphore. The zero value has zero permits.
type Sem struct {
	permits int
	waiters []semWaiter
}

type semWaiter struct {
	w *vtime.Waker
	n int
}

// NewSem returns a semaphore holding n permits.
func NewSem(n int) *Sem { return &Sem{permits: n} }

// Acquire takes n permits, blocking until they are available. Waiters are
// served strictly FIFO, so a large acquire is not starved by small ones.
func (s *Sem) Acquire(p *vtime.Proc, n int) {
	if n < 0 {
		panic("vsync: Acquire with negative count")
	}
	if len(s.waiters) == 0 && s.permits >= n {
		s.permits -= n
		return
	}
	w := p.Blocker("semaphore")
	s.waiters = append(s.waiters, semWaiter{w: w, n: n})
	w.Wait()
}

// TryAcquire takes n permits without blocking and reports success.
func (s *Sem) TryAcquire(n int) bool {
	if len(s.waiters) == 0 && s.permits >= n {
		s.permits -= n
		return true
	}
	return false
}

// Release returns n permits and serves queued waiters in order.
func (s *Sem) Release(n int) {
	if n < 0 {
		panic("vsync: Release with negative count")
	}
	s.permits += n
	for len(s.waiters) > 0 && s.permits >= s.waiters[0].n {
		sw := s.waiters[0]
		s.waiters = s.waiters[:copy(s.waiters, s.waiters[1:])]
		s.permits -= sw.n
		sw.w.Wake()
	}
}

// Available returns the number of free permits.
func (s *Sem) Available() int { return s.permits }

// WaitGroup waits for a collection of processes to finish, mirroring
// sync.WaitGroup.
type WaitGroup struct {
	count   int
	waiters []*vtime.Waker
}

// Add adds delta to the counter. A negative total panics.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("vsync: negative WaitGroup counter")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			w.Wake()
		}
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *vtime.Proc) {
	if wg.count == 0 {
		return
	}
	w := p.Blocker("waitgroup")
	wg.waiters = append(wg.waiters, w)
	w.Wait()
}
