package vsync

import (
	"fmt"
	"strings"
	"testing"

	"madgo/internal/vtime"
)

// runSim builds a simulation, lets body spawn processes, runs it to
// completion and fails the test on deadlock.
func runSim(t *testing.T, body func(s *vtime.Sim)) {
	t.Helper()
	s := vtime.New()
	body(s)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexExclusion(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		inside := 0
		for i := 0; i < 4; i++ {
			s.Spawn(fmt.Sprintf("p%d", i), func(p *vtime.Proc) {
				for k := 0; k < 3; k++ {
					mu.Lock(p)
					inside++
					if inside != 1 {
						t.Errorf("mutual exclusion violated: inside=%d", inside)
					}
					p.Sleep(vtime.Microsecond)
					inside--
					mu.Unlock(p)
				}
			})
		}
	})
}

func TestMutexFIFO(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		var order []string
		s.Spawn("holder", func(p *vtime.Proc) {
			mu.Lock(p)
			p.Sleep(10 * vtime.Microsecond)
			mu.Unlock(p)
		})
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("w%d", i)
			delay := vtime.Duration(i+1) * vtime.Microsecond
			s.Spawn(name, func(p *vtime.Proc) {
				p.Sleep(delay) // arrival order w0, w1, w2
				mu.Lock(p)
				order = append(order, name)
				mu.Unlock(p)
			})
		}
		s.Spawn("check", func(p *vtime.Proc) {
			p.Sleep(vtime.Millisecond)
			if got := strings.Join(order, ","); got != "w0,w1,w2" {
				t.Errorf("order = %s, want w0,w1,w2", got)
			}
		})
	})
}

func TestMutexRecursivePanics(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		s.Spawn("p", func(p *vtime.Proc) {
			mu.Lock(p)
			defer func() {
				if recover() == nil {
					t.Error("expected panic on recursive lock")
				}
				mu.Unlock(p)
			}()
			mu.Lock(p)
		})
	})
}

func TestMutexUnlockByStrangerPanics(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		s.Spawn("owner", func(p *vtime.Proc) {
			mu.Lock(p)
			p.Sleep(5 * vtime.Microsecond)
			mu.Unlock(p)
		})
		s.Spawn("stranger", func(p *vtime.Proc) {
			p.Sleep(vtime.Microsecond)
			defer func() {
				if recover() == nil {
					t.Error("expected panic on foreign unlock")
				}
			}()
			mu.Unlock(p)
		})
	})
}

func TestTryLock(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		s.Spawn("p", func(p *vtime.Proc) {
			if !mu.TryLock(p) {
				t.Error("TryLock on free mutex failed")
			}
			if mu.TryLock(p) {
				t.Error("TryLock on held mutex succeeded")
			}
			mu.Unlock(p)
			if mu.Locked() {
				t.Error("mutex still locked after unlock")
			}
		})
	})
}

func TestCondSignalWakesOne(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		c := NewCond(&mu)
		ready := 0
		woken := 0
		for i := 0; i < 3; i++ {
			s.Spawn(fmt.Sprintf("waiter%d", i), func(p *vtime.Proc) {
				mu.Lock(p)
				ready++
				c.Wait(p)
				woken++
				mu.Unlock(p)
			})
		}
		s.Spawn("signaler", func(p *vtime.Proc) {
			p.Sleep(vtime.Microsecond)
			mu.Lock(p)
			if ready != 3 {
				t.Errorf("ready = %d, want 3", ready)
			}
			c.Signal()
			mu.Unlock(p)
			p.Sleep(vtime.Microsecond)
			if woken != 1 {
				t.Errorf("woken = %d after Signal, want 1", woken)
			}
			mu.Lock(p)
			c.Broadcast()
			mu.Unlock(p)
			p.Sleep(vtime.Microsecond)
			if woken != 3 {
				t.Errorf("woken = %d after Broadcast, want 3", woken)
			}
		})
	})
}

func TestCondWaitReleasesLock(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var mu Mutex
		c := NewCond(&mu)
		s.Spawn("waiter", func(p *vtime.Proc) {
			mu.Lock(p)
			c.Wait(p)
			mu.Unlock(p)
		})
		s.Spawn("prober", func(p *vtime.Proc) {
			p.Sleep(vtime.Microsecond)
			mu.Lock(p) // must succeed while waiter waits
			c.Signal()
			mu.Unlock(p)
		})
	})
}

func TestSemCounts(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		sem := NewSem(2)
		var peak, cur int
		for i := 0; i < 5; i++ {
			s.Spawn(fmt.Sprintf("p%d", i), func(p *vtime.Proc) {
				sem.Acquire(p, 1)
				cur++
				if cur > peak {
					peak = cur
				}
				p.Sleep(vtime.Microsecond)
				cur--
				sem.Release(1)
			})
		}
		s.Spawn("check", func(p *vtime.Proc) {
			p.Sleep(vtime.Millisecond)
			if peak != 2 {
				t.Errorf("peak = %d, want 2", peak)
			}
			if sem.Available() != 2 {
				t.Errorf("available = %d, want 2", sem.Available())
			}
		})
	})
}

func TestSemFIFOLargeNotStarved(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		sem := NewSem(2)
		var order []string
		s.Spawn("hog", func(p *vtime.Proc) {
			sem.Acquire(p, 2)
			p.Sleep(10 * vtime.Microsecond)
			sem.Release(2)
		})
		s.Spawn("big", func(p *vtime.Proc) {
			p.Sleep(vtime.Microsecond)
			sem.Acquire(p, 2) // queues first
			order = append(order, "big")
			sem.Release(2)
		})
		s.Spawn("small", func(p *vtime.Proc) {
			p.Sleep(2 * vtime.Microsecond)
			sem.Acquire(p, 1) // would starve big if served eagerly
			order = append(order, "small")
			sem.Release(1)
		})
		s.Spawn("check", func(p *vtime.Proc) {
			p.Sleep(vtime.Millisecond)
			if got := strings.Join(order, ","); got != "big,small" {
				t.Errorf("order = %s, want big,small", got)
			}
		})
	})
}

func TestTryAcquire(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		sem := NewSem(1)
		s.Spawn("p", func(p *vtime.Proc) {
			if !sem.TryAcquire(1) {
				t.Error("TryAcquire failed on free semaphore")
			}
			if sem.TryAcquire(1) {
				t.Error("TryAcquire succeeded on empty semaphore")
			}
			sem.Release(1)
		})
	})
}

func TestWaitGroup(t *testing.T) {
	runSim(t, func(s *vtime.Sim) {
		var wg WaitGroup
		var doneAt vtime.Time
		wg.Add(3)
		for i := 0; i < 3; i++ {
			d := vtime.Duration(i+1) * vtime.Microsecond
			s.Spawn(fmt.Sprintf("w%d", i), func(p *vtime.Proc) {
				p.Sleep(d)
				wg.Done()
			})
		}
		s.Spawn("waiter", func(p *vtime.Proc) {
			wg.Wait(p)
			doneAt = p.Now()
			wg.Wait(p) // zero counter: returns immediately
		})
		s.Spawn("check", func(p *vtime.Proc) {
			p.Sleep(vtime.Millisecond)
			if doneAt != vtime.Time(3*vtime.Microsecond) {
				t.Errorf("waiter released at %v, want 3µs", doneAt)
			}
		})
	})
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var wg WaitGroup
	wg.Done()
}
