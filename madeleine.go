// Package madeleine is the public face of madgo, a Go reproduction of the
// Madeleine multi-device communication library with the transparent
// inter-device data-forwarding mechanism of Aumage, Eyraud and Namyst
// ("Efficient Inter-Device Data-Forwarding in the Madeleine Communication
// Library", 2001).
//
// A System is a simulated cluster of clusters: nodes with calibrated
// 2001-era hardware (PCI buses, Myrinet/BIP, SCI/SISCI, Fast Ethernet, SBP
// NICs), one virtual channel spanning the declared networks, and forwarding
// gateways on every node that bridges two of them. Application code runs as
// virtual-time processes and exchanges messages with the paper's
// incremental packing interface:
//
//	sys, _ := madeleine.NewSystem(`
//		network sci0 sci
//		network myri0 myrinet
//		node a0 sci0
//		node gw sci0 myri0
//		node b0 myri0
//	`)
//	sys.Spawn("sender", func(p *madeleine.Proc) {
//		px := sys.At("a0").BeginPacking(p, "b0")
//		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
//		px.EndPacking(p)
//	})
//	sys.Spawn("receiver", func(p *madeleine.Proc) {
//		u := sys.At("b0").BeginUnpacking(p)
//		u.Unpack(p, buf, madeleine.SendCheaper, madeleine.ReceiveCheaper)
//		u.EndUnpacking(p)
//	})
//	err := sys.Run()
//
// Messages between nodes that share a network travel directly; everything
// else is fragmented by the generic transmission module, relayed through
// gateway pipelines, and reassembled — invisibly to the application, as in
// the paper.
//
// The implementation lives in internal packages (vtime, fluid, hw, mad,
// fwd, ...); this package re-exports the pieces a user composes. In an
// upstream open-source release the internal packages would be promoted;
// they are documented to the same standard.
//
// # Options and their subsystems
//
// Every With* option arms or tunes exactly one subsystem:
//
//	WithMTU, WithAutoMTU                   fwd: generic transmission module fragment size
//	WithPathMTU, WithNetworkMTU            fwd: per-path packet-size negotiation
//	WithPipelineDepth                      fwd: gateway staging-buffer ring depth
//	WithoutZeroCopy                        fwd: §2.3 gateway buffer election
//	WithInflowLimit                        fwd: gateway ingress throttle
//	WithEagerSmallMessages                 fwd/eager: compact one-transfer GTM framing
//	WithAggregation, WithAggIdleFlush      fwd/agg: cross-message coalescer
//	WithFlowControl, WithCreditWindow      fwd/flow: credit-based gateway flow control
//	WithStriping, WithStripeThreshold      fwd/stripe: multi-rail striping
//	WithReliableDelivery, WithRetryPolicy  fwd/reliable: acknowledged datagram delivery
//	WithFaults                             fault: deterministic fault injection
//	WithHealthMonitor, WithHealthConfig    health: link failure detector, epochal routes
//	WithRouteNetworks                      route: restrict the channel to named networks
//	WithTracer                             trace: gateway pipeline spans
//	WithMetrics                            obs: counters, histograms, provenance
//	WithoutFlightRecorder, WithFlightRingCap  flight: always-on event recorder
//	WithPaperFidelity, WithProduction      presets bundling the above
//
// Options that tune a subsystem another option arms do not arm it
// themselves: WithAggregation requires WithEagerSmallMessages, WithAggIdleFlush
// requires WithAggregation, WithCreditWindow requires WithFlowControl, and
// WithStripeThreshold requires WithStriping. NewSystem rejects an incoherent
// set with a *ConfigError naming the missing option instead of silently
// ignoring the orphan. (WithFaults, WithRetryPolicy, WithHealthMonitor and
// WithNetworkMTU keep their documented implications — they imply reliable
// delivery or WithPathMTU — because there the implied subsystem is the only
// possible intent.)
package madeleine

import (
	"fmt"
	"io"
	"sort"

	"madgo/internal/bench"
	"madgo/internal/coll"
	"madgo/internal/drivers/bip"
	"madgo/internal/drivers/loopback"
	"madgo/internal/drivers/sbp"
	"madgo/internal/drivers/sisci"
	"madgo/internal/drivers/tcpnet"
	"madgo/internal/fault"
	"madgo/internal/flight"
	"madgo/internal/fwd"
	"madgo/internal/health"
	"madgo/internal/hw"
	"madgo/internal/mad"
	"madgo/internal/obs"
	"madgo/internal/route"
	"madgo/internal/topo"
	"madgo/internal/trace"
	"madgo/internal/vtime"
)

// Re-exported core types. Proc is a simulated thread; all communication
// calls take the calling process explicitly.
type (
	// Proc is a virtual-time process handle.
	Proc = vtime.Proc
	// Time is an absolute virtual timestamp (nanoseconds).
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration
	// Rank identifies a node in the session.
	Rank = mad.Rank
	// SendMode is a block's emission constraint.
	SendMode = mad.SendMode
	// RecvMode is a block's reception constraint.
	RecvMode = mad.RecvMode
	// Packing is an in-progress outgoing message on the virtual channel.
	Packing = fwd.Packing
	// Unpacking is an in-progress incoming message.
	Unpacking = fwd.Unpacking
	// Topology describes networks, nodes and gateways.
	Topology = topo.Topology
	// Tracer records gateway pipeline spans.
	Tracer = trace.Tracer
	// Experiment is a regenerable table/figure of the paper.
	Experiment = bench.Experiment
	// Comm is a collective-operations communicator over the virtual
	// channel (barrier, broadcast, reduce, allreduce, gather).
	Comm = coll.Comm
	// ReduceOp combines float64 vectors element-wise in reductions.
	ReduceOp = coll.Op
	// FaultPlan is a seeded, deterministic fault schedule (packet loss,
	// corruption, link flaps, NIC stalls, node crashes).
	FaultPlan = fault.Plan
	// RetryPolicy tunes the reliable delivery mode's timeouts and budgets.
	RetryPolicy = fwd.RetryPolicy
	// DeliveryError reports a message the reliable mode could not deliver
	// within its retry budget; Run returns it instead of deadlocking.
	DeliveryError = fwd.DeliveryError
	// DeliveryStats aggregates the recovery work of a reliable run.
	DeliveryStats = fwd.DeliveryStats
	// StripeStats aggregates the multi-rail striping layer's counters
	// (messages striped, rebalances, rail failovers, per-rail bytes).
	StripeStats = fwd.StripeStats
	// AckStats aggregates the reliable mode's acknowledgement traffic
	// (packets sent, entries coalesced, entries piggybacked on data).
	AckStats = fwd.AckStats
	// FlowStats aggregates the credit-based flow-control counters
	// (credits granted/spent, sender stalls, scheduler rounds,
	// backpressure refusals) attached with WithFlowControl.
	FlowStats = fwd.FlowStats
	// FlowAccountStats is the per-(gateway, sender) credit-account
	// breakdown behind FlowStats.
	FlowAccountStats = fwd.FlowAccountStats
	// AggStats aggregates the small-message coalescing counters
	// (sub-messages coalesced, frames flushed by trigger, bypasses)
	// attached with WithAggregation.
	AggStats = fwd.AggStats
	// McastStats aggregates the gateway-native multicast counters
	// (multicasts sent, gateway relays, tree branches, replicated
	// packets/bytes, local deliveries, distribution-tree cache activity);
	// see Endpoint.BeginMulticast and Comm.Broadcast.
	McastStats = fwd.McastStats
	// Metrics is a virtual-time-aware metrics registry: counters, gauges,
	// latency histograms and per-message provenance traces, attached with
	// WithMetrics.
	Metrics = obs.Registry
	// MetricLabels tags one metric series (e.g. {"node": "gw"}).
	MetricLabels = obs.Labels
	// MetricSample is one series of Metrics.Samples(), the JSON-friendly
	// snapshot madstat -json emits.
	MetricSample = obs.Sample
	// MessageHop is one provenance event of a traced message.
	MessageHop = obs.Hop
	// Lane is the busy/stall/idle decomposition of one pipeline actor.
	Lane = obs.Lane
	// HealthConfig tunes the link-health failure detector attached with
	// WithHealthMonitor; the zero value of any field selects its default.
	HealthConfig = health.Config
	// HealthMonitor is the running failure detector, reachable through
	// System.Health. It owns the epochal route tables: every link death or
	// re-admission publishes a new routing epoch the senders converge on.
	HealthMonitor = health.Monitor
	// LinkHealth is one directed link's externally visible condition
	// (state, EWMA score, observed round-trip).
	LinkHealth = health.LinkHealth
	// LinkState is a link's position in the detector state machine.
	LinkState = health.State
	// HealthTransition is one recorded link state change.
	HealthTransition = health.Transition
	// LinkEdge identifies a directed link (From, To, Network).
	LinkEdge = route.Edge
	// NoRouteError reports that every route between two nodes is exhausted
	// or excluded by liveness constraints; unwrap DeliveryError with
	// errors.As to get it, or test errors.Is(err, ErrNoRoute).
	NoRouteError = route.NoRouteError
	// FlightRecorder is the always-on in-memory event recorder: bounded
	// per-node rings of structured send/recv/swap/stall/retransmit/probe/
	// epoch events, snapshot-dumped automatically on delivery errors and
	// health-epoch churn. Reachable through System.Flight.
	FlightRecorder = flight.Recorder
	// FlightEvent is one recorded flight event.
	FlightEvent = flight.Event
	// FlightDump is one automatic snapshot of every ring, taken when
	// something went wrong (delivery error, no-route, epoch churn).
	FlightDump = flight.Dump
	// Budget attributes one message's end-to-end latency to named stages
	// (pack, queue-wait, wire, buffer-swap, relay-stall, retransmit+backoff,
	// stripe-reassembly, ack-wait).
	Budget = flight.Budget
	// AggregateBudget sums Budgets over a set of messages.
	AggregateBudget = flight.AggregateBudget
	// Stage names one latency-budget stage.
	Stage = flight.Stage
	// Diagnosis is the output of System.Diagnose: the pathologies the
	// critical-path analyzer recognizes in a run's flight events.
	Diagnosis = flight.Diagnosis
	// Finding is one named pathology with its evidence.
	Finding = flight.Finding
)

// ErrNoRoute is the sentinel matched by errors.Is when delivery failed
// because no live route remains (as opposed to a retry-budget timeout).
var ErrNoRoute = route.ErrNoRoute

// Latency-budget stages, the critical-path analyzer's attribution taxonomy.
const (
	StagePack       = flight.StagePack
	StageQueueWait  = flight.StageQueueWait
	StageWire       = flight.StageWire
	StageSwap       = flight.StageSwap
	StageStall      = flight.StageStall
	StageRexmit     = flight.StageRexmit
	StageReassembly = flight.StageReassembly
	StageAckWait    = flight.StageAckWait
	StageAggWait    = flight.StageAggWait
)

// Diagnosis finding codes, the pathologies Diagnose recognizes.
const (
	// DiagSwapBound: gateway relay throughput is serialized on buffer
	// swaps — the §3.4.1 pathology cured by deepening the pipeline.
	DiagSwapBound = flight.CodeSwapBound
	// DiagStallBound: gateway receive threads spend a significant share of
	// their occupancy waiting for free staging buffers.
	DiagStallBound = flight.CodeStallBound
	// DiagPIODMA: a programmed-I/O network is observed far below nominal
	// rate while a DMA network shares the host bus (the §3.4.2 conflict).
	DiagPIODMA = flight.CodePIODMA
	// DiagRexmitBound: retransmissions and backoff dominate the latency
	// budget — lossy or flapping links.
	DiagRexmitBound = flight.CodeRexmitBound
)

// Link states reported by HealthMonitor.Snapshot. Up and Suspect links are
// routable; Dead and Probation links are excluded from every route table
// until a run of probation probes re-admits them.
const (
	LinkUp        = health.Up
	LinkSuspect   = health.Suspect
	LinkDead      = health.Dead
	LinkProbation = health.Probation
)

// NewFaultPlan starts an empty deterministic fault plan; chain Drop,
// Corrupt, Flap, Stall and Crash on it and pass it to WithFaults.
func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// DefaultRetryPolicy returns the retry policy reliable mode uses when none
// is given.
func DefaultRetryPolicy() RetryPolicy { return fwd.DefaultRetryPolicy() }

// DefaultHealthConfig returns the failure detector's documented defaults.
func DefaultHealthConfig() HealthConfig { return health.DefaultConfig() }

// Reduction operators for Comm.Reduce/AllReduce.
var (
	OpSum ReduceOp = coll.Sum
	OpMax ReduceOp = coll.Max
	OpMin ReduceOp = coll.Min
)

// Pack/unpack flag constants, mirroring mad_pack's flag pairs.
const (
	SendCheaper = mad.SendCheaper
	SendSafer   = mad.SendSafer
	SendLater   = mad.SendLater

	ReceiveCheaper = mad.ReceiveCheaper
	ReceiveExpress = mad.ReceiveExpress
)

// Virtual-time duration units.
const (
	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// Options tunes a System.
type Options struct {
	// MTU is the generic transmission module's packet size (default
	// 32 KB).
	MTU int
	// AutoMTU derives MTU from the NIC models instead (two-network
	// configurations only).
	AutoMTU bool
	// PipelineDepth is the number of buffers each gateway pipeline
	// rotates (default 2, the paper's double buffering).
	PipelineDepth int
	// PathMTU switches packet-size selection from channel-global to
	// per-path: each message is fragmented at the minimum MTU over the
	// networks its route traverses (see NetworkMTU).
	PathMTU bool
	// NetworkMTU maps network names to their packet-size caps for the
	// per-path negotiation; networks absent from the map use MTU. A
	// non-empty map implies PathMTU.
	NetworkMTU map[string]int
	// DisableZeroCopy turns off the §2.3 buffer election (every relayed
	// packet pays a staging copy).
	DisableZeroCopy bool
	// InflowLimit throttles gateway receive loops to this many bytes/s
	// (0 = off).
	InflowLimit float64
	// Tracer, when non-nil, records gateway pipeline activity.
	Tracer *Tracer
	// Metrics, when non-nil, receives counters, histograms and message
	// provenance from every layer of the system.
	Metrics *Metrics
	// RouteNetworks restricts the virtual channel to the named networks
	// (e.g. the high-speed ones) when the configuration also declares a
	// control network.
	RouteNetworks []string
	// Faults, when non-nil, arms the deterministic fault injector with
	// this plan (and implies reliable delivery). A plan embedded in the
	// topology configuration ("fault ..." directives) is used when this
	// field is nil.
	Faults *FaultPlan
	// Retry overrides the reliable mode's retry policy (implies reliable
	// delivery).
	Retry *RetryPolicy
	// Reliable switches the virtual channel to reliable datagram
	// delivery: checksummed, acknowledged, retransmitted packets with
	// gateway failover.
	Reliable bool
	// StripeK, when at least 2, enables multi-rail striping: messages
	// above StripeThreshold are split across up to StripeK link-disjoint
	// routes and transmitted in parallel.
	StripeK int
	// StripeThreshold is the minimum message size (bytes) striping is
	// attempted for; 0 means fwd.DefaultStripeThreshold (16 KB).
	StripeThreshold int
	// Health, when non-nil, arms the link-health failure detector with
	// epochal self-healing routes (implies reliable delivery).
	Health *HealthConfig
	// FlowControl arms credit-based gateway flow control: senders spend a
	// per-(gateway, sender) credit per wire transfer toward a gateway,
	// gateways grant credits back as their relay buffers free and schedule
	// contending ingress flows deficit-round-robin instead of FIFO.
	FlowControl bool
	// CreditWindow overrides the per-(gateway, sender) credit window
	// (default fwd.DefaultCreditWindow). Requires FlowControl.
	CreditWindow int
	// Eager switches small messages to the compact GTM framing: the
	// self-description header piggybacks on the first data fragment and
	// the terminator on the last fragment's metadata, so a sub-MTU
	// message crosses each hop in one wire transfer instead of three.
	Eager bool
	// Aggregation arms the cross-message coalescer: consecutive sub-MTU
	// messages bound for the same destination are packed into one
	// MTU-sized aggregate frame that crosses the wire — and spends flow
	// credit — as a single transfer. Requires Eager (the coalescer emits
	// compact frames).
	Aggregation bool
	// AggIdleFlush is the coalescer's idle deadline; a partially filled
	// frame is flushed once no new message has joined it for this long
	// (0 = fwd.DefaultAggIdleFlush). Requires Aggregation.
	AggIdleFlush Duration
	// DisableFlight turns the always-on flight recorder off. The recorder
	// costs well under 5% of goodput (a bounded ring write per event, no
	// allocation), so leaving it on is the default even for benchmarks.
	DisableFlight bool
	// FlightRingCap overrides the per-node ring capacity (default 4096
	// events).
	FlightRingCap int
}

// Option mutates Options.
type Option func(*Options)

// WithMTU sets the GTM packet size.
func WithMTU(n int) Option { return func(o *Options) { o.MTU = n } }

// WithAutoMTU derives the GTM packet size analytically from the NIC models
// of the virtual channel's networks (the §3.2.2 "chosen at compile time"
// computation, see fwd.SuggestMTU). It requires the channel to span exactly
// two networks — the paper's configuration; with more, set WithMTU
// explicitly.
func WithAutoMTU() Option { return func(o *Options) { o.AutoMTU = true } }

// WithPipelineDepth sets the gateway buffer count.
func WithPipelineDepth(n int) Option { return func(o *Options) { o.PipelineDepth = n } }

// WithPathMTU enables per-path MTU negotiation: every message is
// fragmented at the minimum MTU over the networks its route actually
// traverses (the §2.3 rule), instead of one channel-global packet size.
// Combine with WithNetworkMTU to declare per-network caps; networks
// without one use the WithMTU value.
func WithPathMTU() Option { return func(o *Options) { o.PathMTU = true } }

// WithNetworkMTU caps one network's packet size for the per-path MTU
// negotiation (implies WithPathMTU).
func WithNetworkMTU(network string, bytes int) Option {
	return func(o *Options) {
		if o.NetworkMTU == nil {
			o.NetworkMTU = make(map[string]int)
		}
		o.NetworkMTU[network] = bytes
	}
}

// WithoutZeroCopy disables the gateway buffer election.
func WithoutZeroCopy() Option { return func(o *Options) { o.DisableZeroCopy = true } }

// WithInflowLimit throttles gateway ingress.
func WithInflowLimit(bytesPerSec float64) Option {
	return func(o *Options) { o.InflowLimit = bytesPerSec }
}

// WithTracer attaches a pipeline tracer.
func WithTracer(tr *Tracer) Option { return func(o *Options) { o.Tracer = tr } }

// WithMetrics attaches a metrics registry. The system clocks it with virtual
// time and instruments link sends, gateway relays, buffer switches, copies,
// injected faults and the reliable mode's recovery work; every message packed
// on the virtual channel gets a provenance trace queryable with
// System.MessageTrace.
func WithMetrics(m *Metrics) Option { return func(o *Options) { o.Metrics = m } }

// WithRouteNetworks restricts the virtual channel to the named networks.
func WithRouteNetworks(names ...string) Option {
	return func(o *Options) { o.RouteNetworks = names }
}

// WithFaults arms the deterministic fault injector with the given plan and
// switches the system to reliable delivery so the injected faults are
// survivable.
func WithFaults(p *FaultPlan) Option { return func(o *Options) { o.Faults = p } }

// WithRetryPolicy sets the reliable mode's timeouts and retry budgets
// (implies WithReliableDelivery).
func WithRetryPolicy(rp RetryPolicy) Option { return func(o *Options) { o.Retry = &rp } }

// WithStriping enables multi-rail striping with up to k link-disjoint
// routes per node pair. Large messages are split across the rails
// rate-proportionally and reassembled in place at the receiver; pairs with a
// single route, and messages below the striping threshold, use the ordinary
// single-route path. k must be between 1 (striping off) and 8. Striping
// composes with reliable delivery: a rail that dies mid-message hands its
// residual quota to the surviving rails.
func WithStriping(k int) Option { return func(o *Options) { o.StripeK = k } }

// WithStripeThreshold sets the minimum message size, in bytes, that
// WithStriping splits across rails (default 16 KB). Smaller messages finish
// within one round trip on the fastest rail, so striping them only adds
// header and reassembly overhead. It tunes the striping layer without
// arming it: combine with WithStriping(k >= 2), or NewSystem returns a
// *ConfigError.
func WithStripeThreshold(bytes int) Option {
	return func(o *Options) { o.StripeThreshold = bytes }
}

// WithHealthMonitor arms the link-health failure detector with its default
// configuration (implies WithReliableDelivery). Every link accumulates
// passive evidence — acknowledgement round-trips, send outcomes, relay
// stalls — into an EWMA score driving an Up/Suspect/Dead/Probation state
// machine; idle links are heartbeat-probed. A death excludes the link from
// routing and publishes a new epoch-stamped route table set that in-flight
// messages migrate to; a recovered link is re-admitted (and restored to the
// striping rail set) after a probation run of successful probes. When no
// live route remains, delivery fails fast with an error matching ErrNoRoute
// instead of stalling. Query the detector with System.Health.
func WithHealthMonitor() Option {
	return func(o *Options) {
		hc := DefaultHealthConfig()
		o.Health = &hc
	}
}

// WithHealthConfig is WithHealthMonitor with an explicit detector
// configuration.
func WithHealthConfig(hc HealthConfig) Option {
	return func(o *Options) { o.Health = &hc }
}

// WithoutFlightRecorder disables the always-on flight recorder. Only the
// recorder-overhead experiment has a reason to use this.
func WithoutFlightRecorder() Option { return func(o *Options) { o.DisableFlight = true } }

// WithFlightRingCap sets the flight recorder's per-node ring capacity in
// events (default 4096). Older events are overwritten, never reallocated.
func WithFlightRingCap(n int) Option { return func(o *Options) { o.FlightRingCap = n } }

// WithFlowControl arms credit-based gateway flow control — the "regulate
// the incoming communication flow on gateways" mechanism the paper's
// conclusion calls for. Every wire transfer toward a gateway first spends a
// credit of that (gateway, sender) pair's window; the gateway returns
// credits as its relay buffers drain, so a 64-sender incast parks senders
// in bounded, typed stalls (visible as queue-wait flight events and
// madgo_flow_* metrics) instead of burying the gateway's mailbox. Gateways
// also replace FIFO arrival service with a deficit-round-robin scheduler
// charged by relayed bytes, equalizing long-run goodput across contending
// senders regardless of message size. Query the counters with
// System.FlowStats.
func WithFlowControl() Option { return func(o *Options) { o.FlowControl = true } }

// WithCreditWindow sets the per-(gateway, sender) credit window in wire
// transfers (default fwd.DefaultCreditWindow). It tunes the flow controller
// without arming it: combine with WithFlowControl, or NewSystem returns a
// *ConfigError.
func WithCreditWindow(n int) Option {
	return func(o *Options) { o.CreditWindow = n }
}

// WithEagerSmallMessages switches to the compact GTM framing that attacks
// the fixed per-wire-transfer software overhead of §3.4.1: the
// self-description header piggybacks on the first data fragment and the
// terminator collapses into the last fragment's metadata, so a message that
// fits one fragment crosses each hop in ONE wire transfer instead of three.
// Gateways relay the compact frames obliviously; flow control charges the
// true transfer count.
func WithEagerSmallMessages() Option { return func(o *Options) { o.Eager = true } }

// WithAggregation arms the cross-message coalescer on top of the compact
// framing: consecutive sub-MTU messages from one node to one destination
// are packed into a single MTU-sized aggregate frame — one wire transfer,
// one flow credit, one ARQ sequence in reliable mode — and decoalesced at
// the sink in sender order. Frames flush when full, when a larger message
// must not overtake the queue, or after the idle deadline (see
// WithAggIdleFlush). The coalescer emits compact frames, so it requires
// WithEagerSmallMessages; NewSystem returns a *ConfigError otherwise. Query
// the counters with System.AggStats.
func WithAggregation() Option { return func(o *Options) { o.Aggregation = true } }

// WithAggIdleFlush sets the coalescer's idle deadline — the longest a
// partially filled aggregate frame waits for company before it is flushed
// (default fwd.DefaultAggIdleFlush). It is the latency bound a lone small
// message pays for the batching. It tunes the coalescer without arming it:
// combine with WithAggregation, or NewSystem returns a *ConfigError.
func WithAggIdleFlush(d Duration) Option {
	return func(o *Options) { o.AggIdleFlush = d }
}

// WithReliableDelivery switches the virtual channel from the paper's
// streaming forwarding to reliable datagram delivery: every packet is
// checksummed and acknowledged hop by hop, lost or corrupted packets are
// retransmitted with exponential backoff, and traffic fails over to
// alternate gateways — or degrades to the control network when the channel
// was restricted with WithRouteNetworks — when a node dies.
func WithReliableDelivery() Option { return func(o *Options) { o.Reliable = true } }

// WithPaperFidelity resets the system to the paper's §3 evaluation
// configuration: 32 KB GTM packets, depth-2 double-buffered gateway
// pipelines, the original three-transfer framing (header, data,
// terminator), streaming delivery, and none of the post-paper subsystems
// (no eager framing, aggregation, flow control, striping, reliability or
// health monitoring). Apply it first and layer individual options after it
// to deviate selectively.
func WithPaperFidelity() Option {
	return func(o *Options) {
		o.MTU = 32 * 1024
		o.PipelineDepth = 2
		o.Eager = false
		o.Aggregation = false
		o.AggIdleFlush = 0
		o.FlowControl = false
		o.CreditWindow = 0
		o.StripeK = 0
		o.StripeThreshold = 0
		o.Reliable = false
		o.Health = nil
		o.Retry = nil
	}
}

// WithProduction arms every post-paper subsystem at its defaults: compact
// eager framing with cross-message aggregation, credit-based gateway flow
// control, two-rail striping, reliable (acknowledged, retransmitted)
// delivery, and the link-health failure detector with epochal self-healing
// routes. It is the "everything on" profile the load-pattern examples use;
// layer individual options after it to tune windows, thresholds or
// detector timing. Note that reliable delivery runs its own packet
// protocol, so the streaming-only multicast fan-out is unavailable under
// this preset — collectives fall back to binomial trees.
func WithProduction() Option {
	return func(o *Options) {
		o.Eager = true
		o.Aggregation = true
		o.FlowControl = true
		o.StripeK = 2
		o.Reliable = true
		hc := DefaultHealthConfig()
		o.Health = &hc
	}
}

// ConfigError reports an incoherent option set passed to NewSystem: an
// option that only tunes a subsystem was given without the option that
// arms it. Match with errors.As to recover the offending pair.
type ConfigError struct {
	Option   string // the orphaned option, e.g. "WithCreditWindow"
	Requires string // the option it needs, e.g. "WithFlowControl"
	Detail   string // what the orphaned option would have tuned
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("madeleine: %s requires %s — %s", e.Option, e.Requires, e.Detail)
}

// validate rejects option sets where a tuning option was given without the
// subsystem it tunes; silently ignoring the orphan (or silently arming the
// subsystem) would hide a configuration mistake.
func (o *Options) validate() error {
	if o.Aggregation && !o.Eager {
		return &ConfigError{
			Option:   "WithAggregation",
			Requires: "WithEagerSmallMessages",
			Detail:   "the cross-message coalescer emits compact eager frames",
		}
	}
	if o.AggIdleFlush != 0 && !o.Aggregation {
		return &ConfigError{
			Option:   "WithAggIdleFlush",
			Requires: "WithAggregation",
			Detail:   "the idle deadline flushes aggregate frames that were never armed",
		}
	}
	if o.CreditWindow != 0 && !o.FlowControl {
		return &ConfigError{
			Option:   "WithCreditWindow",
			Requires: "WithFlowControl",
			Detail:   "the credit window sizes a flow controller that was never armed",
		}
	}
	if o.StripeThreshold != 0 && o.StripeK < 2 {
		return &ConfigError{
			Option:   "WithStripeThreshold",
			Requires: "WithStriping",
			Detail:   "the threshold gates a striping layer that was never armed",
		}
	}
	return nil
}

// System is a running simulated cluster of clusters.
type System struct {
	Sim      *vtime.Sim
	Session  *mad.Session
	Channel  *fwd.VirtualChannel
	Topology *topo.Topology

	tracer *Tracer // the WithTracer tracer, for the Chrome exporter
}

// NewSystem parses a textual topology (see the topo format in README) and
// assembles the platform, drivers, virtual channel and gateways.
func NewSystem(config string, opts ...Option) (*System, error) {
	tp, err := topo.Parse(config)
	if err != nil {
		return nil, err
	}
	return NewSystemFromTopology(tp, opts...)
}

// NewSystemFromTopology is NewSystem for an already-built topology.
func NewSystemFromTopology(tp *topo.Topology, opts ...Option) (*System, error) {
	o := Options{MTU: 32 * 1024, PipelineDepth: 2}
	for _, fn := range opts {
		fn(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	vcTopo := tp
	if len(o.RouteNetworks) > 0 {
		var err error
		vcTopo, err = tp.Restrict(o.RouteNetworks...)
		if err != nil {
			return nil, err
		}
	}
	plan := o.Faults
	if plan == nil {
		plan = tp.Faults
	}
	reliable := o.Reliable || plan != nil || o.Retry != nil || o.Health != nil
	sim := vtime.New()
	pl := hw.NewPlatform(sim)
	if o.Metrics != nil {
		// Before fwd.Build so reliable mode's counter pre-registration
		// lands in the registry.
		pl.SetMetrics(o.Metrics)
	}
	if !o.DisableFlight {
		// The flight recorder is always on: its cost is a bounded ring
		// write per event (no allocation), enforced under 5% of goodput by
		// the O2 gate.
		pl.SetFlight(flight.NewRecorder(o.FlightRingCap))
	}
	sess := mad.NewSession(pl)
	// Reliable mode keeps the excluded control networks alive as failover
	// paths, so drivers are bound for the full topology.
	netTopo := vcTopo
	if reliable {
		netTopo = tp
	}
	bindings := make(map[string]fwd.Binding)
	for _, nw := range netTopo.Networks() {
		drv, err := driverFor(nw.Protocol)
		if err != nil {
			return nil, err
		}
		bindings[nw.Name] = fwd.Binding{Net: pl.NewNetwork(nw.Name, drv.NIC()), Drv: drv}
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, err
		}
		pl.ArmFaults(fault.NewInjector(plan, o.Tracer))
	}
	if o.AutoMTU {
		nets := vcTopo.Networks()
		if len(nets) != 2 {
			return nil, fmt.Errorf("madeleine: AutoMTU needs exactly two networks, have %d", len(nets))
		}
		o.MTU = fwd.SuggestMTU(
			bindings[nets[0].Name].Drv.NIC(),
			bindings[nets[1].Name].Drv.NIC(),
			hw.DefaultCPU())
	}
	cfg := fwd.Config{
		MTU:           o.MTU,
		PipelineDepth: o.PipelineDepth,
		PathMTU:       o.PathMTU || len(o.NetworkMTU) > 0,
		NetMTU:        o.NetworkMTU,
		ZeroCopy:      !o.DisableZeroCopy,
		InflowLimit:   o.InflowLimit,
		Tracer:        o.Tracer,
		Reliable:      reliable,

		StripeK:         o.StripeK,
		StripeThreshold: o.StripeThreshold,

		FlowControl:  o.FlowControl,
		CreditWindow: o.CreditWindow,

		Eager:        o.Eager,
		Aggregation:  o.Aggregation,
		AggIdleFlush: o.AggIdleFlush,
	}
	if reliable {
		if o.Retry != nil {
			cfg.Retry = *o.Retry
		}
		if vcTopo != tp {
			cfg.FallbackTopo = tp
		}
		cfg.Health = o.Health
	}
	vc, err := fwd.Build(sess, vcTopo, bindings, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Sim: sim, Session: sess, Channel: vc, Topology: tp, tracer: o.Tracer}, nil
}

func driverFor(protocol string) (mad.Driver, error) {
	switch protocol {
	case "sci":
		return sisci.New(), nil
	case "myrinet":
		return bip.New(), nil
	case "ethernet":
		return tcpnet.New(), nil
	case "sbp":
		return sbp.New(), nil
	case "loopback":
		return loopback.New(), nil
	default:
		return nil, fmt.Errorf("madeleine: no driver for protocol %q", protocol)
	}
}

// Spawn starts an application process at virtual time now.
func (s *System) Spawn(name string, fn func(*Proc)) {
	s.Sim.Spawn(name, fn)
}

// Run executes the simulation until every application process finishes. A
// DeadlockError names the stuck processes and what they wait on.
func (s *System) Run() error { return s.Sim.Run() }

// Now returns the current virtual time.
func (s *System) Now() Time { return s.Sim.Now() }

// At returns the virtual-channel endpoint of the named node.
func (s *System) At(node string) *fwd.Endpoint { return s.Channel.At(node) }

// Rank returns the session rank of the named node.
func (s *System) Rank(node string) Rank { return s.Channel.NodeRank(node) }

// NodeName returns the name of the node with the given rank.
func (s *System) NodeName(r Rank) string { return s.Session.Node(r).Name }

// Gateways returns the nodes running forwarding engines.
func (s *System) Gateways() []string { return s.Channel.Gateways() }

// GatewayStats summarizes the relay and recovery work of one gateway.
// Retransmits and Failovers are always zero outside reliable mode and on
// fault-free reliable runs.
type GatewayStats struct {
	Messages    int64 `json:"messages"`    // messages relayed
	Packets     int64 `json:"packets"`     // packets relayed
	Bytes       int64 `json:"bytes"`       // payload bytes relayed
	Stalls      int64 `json:"stalls"`      // receive-thread waits for a free staging buffer
	Retransmits int64 `json:"retransmits"` // per-hop packet retransmissions performed
	Failovers   int64 `json:"failovers"`   // times a neighbour was presumed dead and rerouted around
}

// NamedGatewayStats is one gateway's entry in Stats, keyed by node name.
type NamedGatewayStats struct {
	Name string `json:"name"`
	GatewayStats
}

// Stats is the one-call snapshot of every subsystem's counters. Subsystems
// that were never armed report zero values: Delivery, Ack, the recovery
// fields of each gateway (reliable mode), Stripe (WithStriping), Flow
// (WithFlowControl), Agg (WithAggregation), Mcast (multicast fan-out on a
// streaming channel). Gateways is sorted by node name. The per-subsystem
// getters (DeliveryStats, FlowStats, ...) are views over this snapshot.
type Stats struct {
	Delivery DeliveryStats       `json:"delivery"`
	Stripe   StripeStats         `json:"stripe"`
	Ack      AckStats            `json:"ack"`
	Flow     FlowStats           `json:"flow"`
	Agg      AggStats            `json:"agg"`
	Mcast    McastStats          `json:"mcast"`
	Gateways []NamedGatewayStats `json:"gateways"`
}

// Stats snapshots every subsystem's counters at once.
func (s *System) Stats() Stats {
	names := s.Channel.Gateways()
	sort.Strings(names)
	gws := make([]NamedGatewayStats, 0, len(names))
	for _, name := range names {
		g, ok := s.Channel.GatewayOK(name)
		if !ok {
			continue
		}
		gws = append(gws, NamedGatewayStats{Name: name, GatewayStats: GatewayStats{
			Messages:    g.Messages(),
			Packets:     g.Packets(),
			Bytes:       g.Bytes(),
			Stalls:      g.Stalls(),
			Retransmits: g.Retransmits(),
			Failovers:   g.Failovers(),
		}})
	}
	return Stats{
		Delivery: s.Channel.DeliveryStats(),
		Stripe:   s.Channel.StripeStats(),
		Ack:      s.Channel.AckStats(),
		Flow:     s.Channel.FlowStats(),
		Agg:      s.Channel.AggStats(),
		Mcast:    s.Channel.McastStats(),
		Gateways: gws,
	}
}

// GatewayStats returns the relay statistics of the named gateway, with
// ok=false when the node runs no forwarding engine.
func (s *System) GatewayStats(name string) (GatewayStats, bool) {
	for _, g := range s.Stats().Gateways {
		if g.Name == name {
			return g.GatewayStats, true
		}
	}
	return GatewayStats{}, false
}

// DeliveryStats aggregates the reliable mode's recovery work over every
// node. All fields are zero in streaming mode and on fault-free reliable
// runs.
func (s *System) DeliveryStats() DeliveryStats { return s.Stats().Delivery }

// StripeStats returns the multi-rail striping counters. All fields are
// zero-valued when striping is off (no WithStriping, or k < 2).
func (s *System) StripeStats() StripeStats { return s.Stats().Stripe }

// AckStats returns the reliable mode's acknowledgement-traffic counters,
// summed over every node. All fields are zero in streaming mode.
func (s *System) AckStats() AckStats { return s.Stats().Ack }

// FlowStats returns the credit-based flow-control counters, aggregated over
// every credit account and gateway scheduler. All fields are zero without
// WithFlowControl.
func (s *System) FlowStats() FlowStats { return s.Stats().Flow }

// FlowAccounts returns the per-(gateway, sender) credit-account counters in
// account creation order. Empty without WithFlowControl.
func (s *System) FlowAccounts() []FlowAccountStats { return s.Channel.FlowAccounts() }

// AggStats returns the small-message coalescing counters. All fields are
// zero without WithAggregation.
func (s *System) AggStats() AggStats { return s.Stats().Agg }

// McastStats returns the gateway-native multicast counters. All fields are
// zero until a BeginMulticast (or a collective riding on it) runs.
func (s *System) McastStats() McastStats { return s.Stats().Mcast }

// Health returns the link-health failure detector, or nil when the system
// was built without WithHealthMonitor. Snapshot lists per-link condition,
// Epoch the current routing epoch, Transitions the full state-change log.
func (s *System) Health() *HealthMonitor { return s.Channel.Health() }

// Routes renders the routing table of the virtual channel.
func (s *System) Routes() string { return s.Channel.Table().String() }

// Copies returns the CPU copy accounting summed over all nodes.
func (s *System) Copies() (count, bytes int64) { return s.Session.Copies() }

// CommAt creates the collective communicator of node self over the given
// member group (same list, same order, on every participant).
func (s *System) CommAt(self string, members ...string) (*Comm, error) {
	return coll.New(s.Channel, members, self)
}

// NewTracer returns an empty pipeline tracer for WithTracer.
func NewTracer() *Tracer { return trace.New() }

// NewMetrics returns an empty metrics registry for WithMetrics.
func NewMetrics() *Metrics { return obs.New() }

// Metrics returns the registry attached with WithMetrics, or nil. A nil
// *Metrics is safe to query: every method returns zero values.
func (s *System) Metrics() *Metrics { return s.Session.Platform.Metrics }

// MessageTrace returns the provenance of one message — every pack, hop,
// relay, retransmission, failover and delivery event it went through, in
// virtual-time order. Message IDs start at 1 in pack order; Metrics().
// Messages() lists them all.
func (s *System) MessageTrace(id uint64) []MessageHop { return s.Metrics().MessageTrace(id) }

// WritePrometheus writes a Prometheus text-format snapshot of every metric
// the attached registry holds (counters, gauges, histograms with cumulative
// buckets and p50/p90/p99 quantile pseudo-series).
func (s *System) WritePrometheus(w io.Writer) { s.Metrics().WritePrometheus(w) }

// WriteChromeTrace writes the run as Chrome trace_event JSON — loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Pipeline spans come from
// the WithTracer tracer, flight-recorder events replay as per-node spans,
// and per-message provenance comes from the WithMetrics registry; any of
// the three may be absent.
func (s *System) WriteChromeTrace(w io.Writer) error {
	var spans []trace.Span
	spans = append(spans, s.tracer.Spans()...)
	spans = append(spans, s.Flight().Spans()...)
	return obs.WriteChromeTrace(w, spans, s.Metrics().Hops())
}

// Flight returns the always-on flight recorder, or nil when the system was
// built with WithoutFlightRecorder. A nil *FlightRecorder is safe to query:
// every method returns zero values.
func (s *System) Flight() *FlightRecorder { return s.Session.Platform.Flight }

// WriteFlightJSON writes the flight recorder's full state — every per-node
// ring plus the automatic failure dumps — as indented JSON.
func (s *System) WriteFlightJSON(w io.Writer) error { return s.Flight().WriteJSON(w) }

// Budgets attributes every observed message's end-to-end latency to named
// stages (pack, queue-wait, wire, buffer-swap, relay-stall,
// retransmit+backoff, stripe-reassembly, ack-wait), in message-id order.
// Provenance hops from the WithMetrics registry widen each message's
// [start, end] window when present; the flight events alone suffice.
func (s *System) Budgets() []Budget {
	rec := s.Flight()
	if rec == nil {
		return nil
	}
	byMsg := flight.IndexByMessage(rec.Events())
	ids := make(map[uint64]bool, len(byMsg))
	for _, id := range s.Metrics().Messages() {
		ids[id] = true
	}
	for id := range byMsg {
		ids[id] = true
	}
	ordered := make([]uint64, 0, len(ids))
	for id := range ids {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	bs := make([]Budget, 0, len(ordered))
	for _, id := range ordered {
		bs = append(bs, flight.AnalyzeMessage(id, s.Metrics().MessageTrace(id), byMsg[id]))
	}
	return bs
}

// Diagnose runs the critical-path analyzer over the run's flight events and
// latency budgets and names the pathologies it recognizes: the §3.4.1
// swap-overhead bound, staging-buffer stalls, the PIO/DMA bus conflict, and
// retransmission-dominated budgets. An empty Findings list means healthy.
func (s *System) Diagnose() Diagnosis {
	rec := s.Flight()
	if rec == nil {
		return Diagnosis{}
	}
	return flight.Diagnose(s.Budgets(), rec.Events(), s.Channel.DiagnosisSignals())
}

// WriteBudgetReport renders Budgets as an aligned text table: one row per
// message plus an aggregate "all" row.
func WriteBudgetReport(w io.Writer, bs []Budget) { flight.WriteBudgets(w, bs) }

// Lanes decomposes each traced pipeline actor's [t0, t1) window into busy,
// stall (buffer switches) and idle time, with the §3.3.1 steady-state period
// of its dominant operation. It needs a WithTracer tracer.
func (s *System) Lanes(t0, t1 Time) []Lane { return obs.AnalyzeLanes(s.tracer, t0, t1) }

// WriteLaneReport renders Lanes as an aligned text table.
func WriteLaneReport(w io.Writer, lanes []Lane) { obs.WriteLaneReport(w, lanes) }

// Experiments returns the registered paper experiments (fig6, fig7, t1...,
// a5) plus the reliability extension (r1); see cmd/madbench for a
// command-line runner.
func Experiments() []*Experiment { return bench.All() }

// RouteTable computes the routing table of an arbitrary topology without
// building a system (used by cmd/madtopo).
func RouteTable(tp *Topology) string { return route.Compute(tp).String() }

// ParseTopology parses the textual configuration format.
func ParseTopology(config string) (*Topology, error) { return topo.Parse(config) }

// PaperTestbed returns the paper's §3 evaluation configuration.
func PaperTestbed() *Topology { return topo.PaperTestbed() }
