package madeleine_test

import (
	"bytes"
	"strings"
	"testing"

	madeleine "madgo"
)

const demoConfig = `
# two clusters, one gateway
network sci0 sci
network myri0 myrinet
node a0 sci0
node a1 sci0
node gw sci0 myri0
node b0 myri0
node b1 myri0
`

func TestSystemEndToEnd(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	var got []byte
	var forwarded bool
	var from madeleine.Rank
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b1").BeginUnpacking(p)
		got = make([]byte, len(payload))
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
		forwarded = u.Forwarded()
		from = u.From()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
	if !forwarded {
		t.Error("not forwarded")
	}
	if sys.NodeName(from) != "a0" {
		t.Errorf("From = %v", from)
	}
	gs, ok := sys.GatewayStats("gw")
	if !ok {
		t.Fatal("GatewayStats(gw) not ok")
	}
	if gs.Messages != 1 || gs.Packets == 0 || gs.Bytes != int64(len(payload)) {
		t.Errorf("gateway stats = %d/%d/%d", gs.Messages, gs.Packets, gs.Bytes)
	}
	if _, ok := sys.GatewayStats("a0"); ok {
		t.Error("GatewayStats(a0) ok for a non-gateway node")
	}
	if gws := sys.Gateways(); len(gws) != 1 || gws[0] != "gw" {
		t.Errorf("gateways = %v", gws)
	}
	if sys.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}

func TestSystemOptions(t *testing.T) {
	tr := madeleine.NewTracer()
	sys, err := madeleine.NewSystem(demoConfig,
		madeleine.WithMTU(8*1024),
		madeleine.WithPipelineDepth(3),
		madeleine.WithTracer(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("s", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b0")
		px.Pack(p, make([]byte, 64*1024), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("r", func(p *madeleine.Proc) {
		u := sys.At("b0").BeginUnpacking(p)
		u.Unpack(p, make([]byte, 64*1024), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans()) == 0 {
		t.Error("tracer recorded nothing")
	}
	gs, _ := sys.GatewayStats("gw")
	if gs.Bytes != 64*1024 {
		t.Errorf("gateway bytes = %d", gs.Bytes)
	}
}

func TestSystemRouteRestriction(t *testing.T) {
	cfg := `
network sci0 sci
network myri0 myrinet
network eth0 ethernet
node a0 sci0 eth0
node gw sci0 myri0 eth0
node b0 myri0 eth0
`
	sys, err := madeleine.NewSystem(cfg, madeleine.WithRouteNetworks("sci0", "myri0"))
	if err != nil {
		t.Fatal(err)
	}
	routes := sys.Routes()
	if strings.Contains(routes, "eth0") {
		t.Errorf("routes use the control network:\n%s", routes)
	}
	if !strings.Contains(routes, "-[sci0]-> gw -[myri0]-> b0") {
		t.Errorf("missing forwarded route:\n%s", routes)
	}
}

func TestSystemErrors(t *testing.T) {
	if _, err := madeleine.NewSystem("garbage directive"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := madeleine.NewSystem("network x warpdrive\nnode a x\nnode b x\n"); err == nil {
		t.Error("expected unknown-protocol error")
	}
	if _, err := madeleine.NewSystem(demoConfig, madeleine.WithMTU(-1)); err == nil {
		t.Error("expected config error")
	}
	if _, err := madeleine.NewSystem(demoConfig, madeleine.WithRouteNetworks("nope")); err == nil {
		t.Error("expected restriction error")
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig)
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("lonely-receiver", func(p *madeleine.Proc) {
		sys.At("b0").BeginUnpacking(p) // nobody ever sends
	})
	err = sys.Run()
	if err == nil || !strings.Contains(err.Error(), "lonely-receiver") {
		t.Fatalf("err = %v, want deadlock naming the process", err)
	}
}

func TestExperimentsExposed(t *testing.T) {
	exps := madeleine.Experiments()
	if len(exps) != 24 {
		t.Fatalf("experiments = %d, want 24", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig6", "fig7", "t1", "headline", "o1", "o2", "p1", "r1", "r2", "s1", "c1", "m1", "b1"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

// TestStripingFacade drives multi-rail striping through the public API:
// the dual-rail topology, WithStriping, byte-exact delivery, and the
// StripeStats/AckStats accessors.
func TestStripingFacade(t *testing.T) {
	sys, err := madeleine.NewSystem(`
		network myri0 myrinet
		network sci0 sci
		node a myri0 sci0
		node b myri0 sci0
	`, madeleine.WithStriping(2), madeleine.WithStripeThreshold(8*1024))
	if err != nil {
		t.Fatal(err)
	}
	const n = 64 * 1024
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	got := make([]byte, n)
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a").BeginPacking(p, "b")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b").BeginUnpacking(p)
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("striped payload corrupted")
	}
	st := sys.StripeStats()
	if st.Messages != 1 {
		t.Errorf("striped %d messages, want 1", st.Messages)
	}
	if len(st.RailBytes) != 2 {
		t.Errorf("rail bytes on %d rails, want 2: %v", len(st.RailBytes), st.RailBytes)
	}
	if ack := sys.AckStats(); ack != (madeleine.AckStats{}) {
		t.Errorf("streaming mode reported ack traffic: %+v", ack)
	}
}

func TestPaperTestbedHelpers(t *testing.T) {
	tp := madeleine.PaperTestbed()
	if rt := madeleine.RouteTable(tp); !strings.Contains(rt, "gw") {
		t.Error("route table missing gateway")
	}
	if _, err := madeleine.ParseTopology(tp.String()); err != nil {
		t.Errorf("round trip: %v", err)
	}
	sys, err := madeleine.NewSystemFromTopology(tp, madeleine.WithRouteNetworks("sci0", "myri0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Gateways()) != 1 {
		t.Errorf("gateways = %v", sys.Gateways())
	}
}

func TestBidirectionalPingPong(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	sys.Spawn("a-side", func(p *madeleine.Proc) {
		for i := 0; i < rounds; i++ {
			px := sys.At("a1").BeginPacking(p, "b1")
			px.Pack(p, []byte{byte(i)}, madeleine.SendCheaper, madeleine.ReceiveExpress)
			px.EndPacking(p)
			u := sys.At("a1").BeginUnpacking(p)
			echo := make([]byte, 1)
			u.Unpack(p, echo, madeleine.SendCheaper, madeleine.ReceiveExpress)
			u.EndUnpacking(p)
			if echo[0] != byte(i) {
				t.Errorf("round %d: echo %d", i, echo[0])
			}
		}
	})
	sys.Spawn("b-side", func(p *madeleine.Proc) {
		for i := 0; i < rounds; i++ {
			u := sys.At("b1").BeginUnpacking(p)
			v := make([]byte, 1)
			u.Unpack(p, v, madeleine.SendCheaper, madeleine.ReceiveExpress)
			u.EndUnpacking(p)
			px := sys.At("b1").BeginPacking(p, "a1")
			px.Pack(p, v, madeleine.SendCheaper, madeleine.ReceiveExpress)
			px.EndPacking(p)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoMTU(t *testing.T) {
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithAutoMTU())
	if err != nil {
		t.Fatal(err)
	}
	if mtu := sys.Channel.Config().MTU; mtu < 32*1024 {
		t.Errorf("auto MTU = %d, want the analytic optimum (>= 32 KB)", mtu)
	}
	// Three networks: AutoMTU must refuse.
	cfg3 := demoConfig + "network x0 sbp\nnode s1 x0\nnode gw2 myri0 x0\n"
	if _, err := madeleine.NewSystem(cfg3, madeleine.WithAutoMTU()); err == nil {
		t.Error("expected AutoMTU error for three networks")
	}
}
