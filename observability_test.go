package madeleine_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	madeleine "madgo"
)

// TestObservabilityEndToEnd is the issue's acceptance scenario: a single
// reliable run under injected loss must yield, from one registry,
//
//	(a) a Chrome trace_event JSON file Perfetto accepts,
//	(b) a Prometheus snapshot with retransmit/failover counters and a
//	    send-latency histogram with p50/p99, and
//	(c) a complete per-message hop sequence including the retransmitted
//	    hops.
func TestObservabilityEndToEnd(t *testing.T) {
	plan := madeleine.NewFaultPlan(7).Drop("*", 0.10)
	tr := madeleine.NewTracer()
	m := madeleine.NewMetrics()
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithRouteNetworks("sci0", "myri0"),
		madeleine.WithMTU(16*1024),
		madeleine.WithFaults(plan),
		madeleine.WithTracer(tr),
		madeleine.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics() != m {
		t.Fatal("System.Metrics() is not the WithMetrics registry")
	}

	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i*11 + 3)
	}
	var got []byte
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a1").BeginPacking(p, "b1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b1").BeginUnpacking(p)
		got = make([]byte, len(payload))
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted under 10% loss")
	}
	ds := sys.DeliveryStats()
	if ds.Retransmits == 0 {
		t.Fatal("10% loss run saw zero retransmissions; the assertions below would be vacuous")
	}

	// (a) Chrome trace JSON: well-formed, with pipeline spans and message
	// instants.
	var chrome bytes.Buffer
	if err := sys.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	phs := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phs[ph]++
		switch ph {
		case "X":
			for _, k := range []string{"name", "pid", "tid", "ts", "dur"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("complete event missing %q: %v", k, ev)
				}
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("instant event scope = %q, want \"t\"", s)
			}
		}
	}
	if phs["X"] == 0 || phs["i"] == 0 || phs["M"] == 0 {
		t.Errorf("chrome trace phases = %v, want spans (X), instants (i) and metadata (M)", phs)
	}

	// (b) Prometheus snapshot: recovery counters and the send-latency
	// histogram's quantile series.
	var prom bytes.Buffer
	sys.WritePrometheus(&prom)
	snap := prom.String()
	for _, want := range []string{
		"# TYPE madgo_retransmits_total counter",
		"# TYPE madgo_failovers_total counter",
		"# TYPE madgo_link_send_seconds histogram",
		`quantile="0.5"`,
		`quantile="0.99"`,
		`madgo_link_send_seconds_bucket{le="+Inf"`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("prometheus snapshot missing %q", want)
		}
	}
	// The quantile pseudo-series of the send-latency histogram (labels are
	// canonically sorted, so quantile comes last).
	if !strings.Contains(snap, "madgo_link_send_seconds{") {
		t.Error("prometheus snapshot has no send-latency quantile series")
	}
	var totalRexmit float64
	for _, n := range sys.Topology.Nodes() {
		totalRexmit += m.Counter("madgo_retransmits_total", madeleine.MetricLabels{"node": n.Name})
	}
	if int64(totalRexmit) != ds.Retransmits {
		t.Errorf("metric retransmits = %v, DeliveryStats = %d", totalRexmit, ds.Retransmits)
	}

	// (c) Per-message provenance: the payload message's hop sequence is
	// complete — packed at the sender, relayed at a gateway, delivered at
	// the receiver — and includes the retransmitted hops.
	ids := m.Messages()
	if len(ids) == 0 {
		t.Fatal("no traced messages")
	}
	var best []madeleine.MessageHop
	for _, id := range ids {
		h := sys.MessageTrace(id)
		if len(h) > len(best) {
			best = h
		}
	}
	ops := make(map[string][]madeleine.MessageHop)
	for i, h := range best {
		ops[h.Op] = append(ops[h.Op], h)
		if i > 0 && h.At < best[i-1].At {
			t.Fatal("message trace not in virtual-time order")
		}
	}
	if len(ops["pack"]) == 0 || ops["pack"][0].Node != "a1" {
		t.Errorf("trace does not start with a pack at a1: %v", ops["pack"])
	}
	if len(ops["hop"]) == 0 {
		t.Error("trace has no hop events")
	}
	if len(ops["rexmit"]) == 0 {
		t.Error("trace has no retransmitted hops under 10% loss")
	}
	if len(ops["deliver"]) != 1 || ops["deliver"][0].Node != "b1" {
		t.Errorf("trace delivery = %v, want exactly one at b1", ops["deliver"])
	}
	if ops["deliver"][0].Bytes != len(payload) {
		t.Errorf("delivered bytes = %d, want %d", ops["deliver"][0].Bytes, len(payload))
	}
	if len(ops["e2e"]) == 0 {
		t.Error("trace has no end-to-end acknowledgement event")
	}

	// The bubble analyzer sees the reliable engines' spans.
	lanes := sys.Lanes(0, sys.Now())
	if len(lanes) == 0 {
		t.Error("no pipeline lanes analyzed")
	}
}

// TestObservabilityStreamingRun checks the instrumentation of the paper's
// fault-free streaming path: GTM fragmentation hops, gateway relay and swap
// histograms, and the memcpy/link counters.
func TestObservabilityStreamingRun(t *testing.T) {
	tr := madeleine.NewTracer()
	m := madeleine.NewMetrics()
	sys, err := madeleine.NewSystem(demoConfig,
		madeleine.WithTracer(tr), madeleine.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300_000)
	var got []byte
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b0")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b0").BeginUnpacking(p)
		got = make([]byte, len(payload))
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	// One GTM message: pack at a0, per-fragment hops, gateway relay,
	// reassembly at b0.
	ids := m.Messages()
	if len(ids) != 1 {
		t.Fatalf("Messages() = %v, want exactly one", ids)
	}
	hops := sys.MessageTrace(ids[0])
	ops := make(map[string]int)
	for _, h := range hops {
		ops[h.Op]++
	}
	if ops["pack"] != 1 || ops["relay"] == 0 || ops["deliver"] != 1 {
		t.Errorf("streaming trace ops = %v, want pack/relay/deliver", ops)
	}

	// The gateway swap histogram measures the §3.3.1 buffer-switch
	// overhead: every observation is the host's constant SwapOverhead, so
	// all quantiles agree.
	gw := madeleine.MetricLabels{"gateway": "gw"}
	if n := m.HistogramCount("madgo_gateway_swap_seconds", gw); n == 0 {
		t.Fatal("no gateway swap observations")
	}
	p50, ok := m.Quantile("madgo_gateway_swap_seconds", gw, 0.5)
	if !ok {
		t.Fatal("no p50 swap quantile")
	}
	p99, _ := m.Quantile("madgo_gateway_swap_seconds", gw, 0.99)
	if p50 != p99 {
		t.Errorf("constant swap overhead has p50 %v != p99 %v", p50, p99)
	}
	if p50 < 10e-6 || p50 > 200e-6 {
		t.Errorf("swap overhead p50 = %v s, want tens of microseconds", p50)
	}

	if m.Counter("madgo_link_sends_total", madeleine.MetricLabels{"net": "sci0", "node": "a0"}) == 0 {
		t.Error("no link sends counted on a0/sci0")
	}
	if m.Counter("madgo_gateway_relayed_packets_total", gw) == 0 {
		t.Error("no relayed packets counted")
	}

	// Lane analysis over the gateway pipeline actors.
	lanes := sys.Lanes(0, sys.Now())
	var sawGw bool
	for _, l := range lanes {
		if strings.HasPrefix(l.Actor, "gw:") {
			sawGw = true
			if l.Busy+l.Stall+l.Idle != madeleine.Duration(sys.Now()) {
				t.Errorf("lane %s: busy+stall+idle = %v, window = %v",
					l.Actor, l.Busy+l.Stall+l.Idle, sys.Now())
			}
			if l.Stall == 0 {
				t.Errorf("lane %s has no buffer-switch stall time", l.Actor)
			}
		}
	}
	if !sawGw {
		t.Errorf("no gateway lanes in %d analyzed lanes", len(lanes))
	}
}
