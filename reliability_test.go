package madeleine_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	madeleine "madgo"
)

// faultyConfig embeds a fault schedule in the topology text: reliable
// delivery switches on automatically and the injected loss must be invisible
// to the application.
const faultyConfig = `
network sci0 sci
network myri0 myrinet
node a0 sci0
node a1 sci0
node gw sci0 myri0
node b0 myri0
node b1 myri0
fault seed 42
fault drop * 0.05
`

func TestSystemFaultDSL(t *testing.T) {
	sys, err := madeleine.NewSystem(faultyConfig)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b1").BeginUnpacking(p)
		got = make([]byte, len(payload))
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted under 5% loss")
	}
	if ds := sys.DeliveryStats(); ds.Retransmits == 0 {
		t.Error("5% loss run saw zero retransmissions")
	}
}

// TestSystemLossAndMidTransferCrash is the issue's acceptance scenario: an
// 8 MB SCI->Myrinet transfer under seeded 5% packet loss whose only
// high-speed gateway crashes mid-transfer. Reliable delivery must complete
// the transfer byte-exact by retransmitting and failing over to the
// Ethernet control network, and the recovery must be visible in the trace.
func TestSystemLossAndMidTransferCrash(t *testing.T) {
	plan := madeleine.NewFaultPlan(9).
		Drop("*", 0.05).
		Crash("gw", madeleine.Time(30*madeleine.Millisecond), 0)
	tr := madeleine.NewTracer()
	sys, err := madeleine.NewSystemFromTopology(madeleine.PaperTestbed(),
		madeleine.WithRouteNetworks("sci0", "myri0"),
		madeleine.WithFaults(plan),
		madeleine.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}
	var got []byte
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a1").BeginPacking(p, "b1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b1").BeginUnpacking(p)
		got = make([]byte, len(payload))
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("8 MB transfer not byte-exact across loss and crash")
	}
	ds := sys.DeliveryStats()
	if ds.Retransmits == 0 {
		t.Error("no retransmissions under 5% loss")
	}
	if ds.Failovers == 0 {
		t.Error("gateway crash caused no failover")
	}
	ops := make(map[string]bool)
	for _, s := range tr.Spans() {
		ops[s.Op] = true
	}
	if !ops["crash"] {
		t.Error("trace has no crash span")
	}
	if !ops["failover"] {
		t.Error("trace has no failover span")
	}
	// The madtrace-style timeline must show the recovery marks.
	tl := tr.Timeline(0, sys.Now(), 160)
	if !strings.Contains(tl, "C") {
		t.Error("timeline missing crash mark")
	}
	if !strings.Contains(tl, "F") {
		t.Error("timeline missing failover mark")
	}
}

// TestSystemReliableUnreachable checks that a partition surfaces a typed
// DeliveryError from Run instead of a deadlock.
func TestSystemReliableUnreachable(t *testing.T) {
	plan := madeleine.NewFaultPlan(1).Crash("gw", 0, 0)
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b0")
		px.Pack(p, make([]byte, 10_000), madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	err = sys.Run()
	var de *madeleine.DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want a *DeliveryError", err)
	}
	if de.From != "a0" || de.To != "b0" {
		t.Errorf("DeliveryError names %s -> %s, want a0 -> b0", de.From, de.To)
	}
}

// TestSystemRetryPolicyOption checks that WithRetryPolicy alone switches the
// system to reliable mode.
func TestSystemRetryPolicyOption(t *testing.T) {
	rp := madeleine.DefaultRetryPolicy()
	rp.PacketRetries = 2
	sys, err := madeleine.NewSystem(demoConfig, madeleine.WithRetryPolicy(rp))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 50_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	sys.Spawn("sender", func(p *madeleine.Proc) {
		px := sys.At("a0").BeginPacking(p, "b1")
		px.Pack(p, payload, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		px.EndPacking(p)
	})
	sys.Spawn("receiver", func(p *madeleine.Proc) {
		u := sys.At("b1").BeginUnpacking(p)
		got = make([]byte, len(payload))
		u.Unpack(p, got, madeleine.SendCheaper, madeleine.ReceiveCheaper)
		u.EndUnpacking(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
	gs, ok := sys.GatewayStats("gw")
	if !ok || gs.Messages != 1 {
		t.Errorf("gateway stats = %+v ok=%v, want one relayed message", gs, ok)
	}
	if gs.Retransmits != 0 || gs.Failovers != 0 {
		t.Errorf("fault-free run recovered: %+v", gs)
	}
}
